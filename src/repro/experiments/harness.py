"""The experiment harness: a fully wired network with one control protocol.

:class:`Network` assembles deployment → channel (+ optional WiFi interferer)
→ per-node stacks → one registered control protocol (``"tele"``, ``"drip"``,
``"rpl"``, ``"orpl"``, or any :func:`repro.protocols.register_protocol`
plugin), and offers convergence helpers plus a uniform ``send_control`` that
records a :class:`~repro.metrics.control.ControlRecord` per request. The
class itself is protocol-agnostic: every per-protocol behaviour lives in a
:class:`~repro.protocols.ControlProtocolAdapter` looked up in the registry.
Examples and benchmarks all build on this class; the public
``repro.build_network`` returns one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro.baselines.drip import DripParams
from repro.baselines.orpl import OrplParams
from repro.baselines.rpl import RplParams
from repro.core import Controller
from repro.core.allocation import AllocationParams
from repro.core.forwarding import ForwardingParams
from repro.core.messages import reset_serials
from repro.faults.injector import ChurnGuard, FaultInjector
from repro.faults.plan import FaultPlan
from repro.mac.lpl import MacParams
from repro.metrics.control import ControlMetrics, ControlRecord
from repro.metrics.network import NetworkMetrics
from repro.net.node import NodeStack
from repro.protocols import REGISTRY, ControlProtocolAdapter
from repro.radio.battery import BatteryParams, DepletionMonitor
from repro.radio.channel import Channel
from repro.radio.profiles import get_radio_profile
from repro.radio.spatial import SpatialChannel, SpatialIndexParams
from repro.sim.simulator import Simulator
from repro.sim.units import MINUTE, SECOND
from repro.topology import (
    Deployment,
    city_blocks,
    clustered_field,
    forest,
    indoor_testbed,
    random_uniform,
    sparse_linear,
    tight_grid,
)
from repro.topology.mobility import MobilityDriver, MobilityParams
from repro.workloads.collection import CollectionWorkload
from repro.workloads.interference import WifiInterferer, WifiParams

_TOPOLOGIES: Dict[str, Callable[[int], Deployment]] = {
    "tight-grid": tight_grid,
    "sparse-linear": sparse_linear,
    "indoor-testbed": indoor_testbed,
    "city-blocks": city_blocks,
    "clustered-field": clustered_field,
    "forest": forest,
}


@dataclass
class NetworkConfig:
    """Everything needed to build a network."""

    topology: Union[str, Deployment] = "indoor-testbed"
    protocol: str = "tele"  # "tele" | "drip" | "rpl" | "none"
    seed: int = 0
    #: ZigBee channel: 26 (clean) or 19 (WiFi-interfered), per the paper.
    zigbee_channel: int = 26
    #: Noise model: "cpm" (synthetic meyer-like trace) or "constant".
    noise: str = "cpm"
    #: All radios always on (used by the Figure 6 construction experiments;
    #: TOSSIM's default CTP runs are not duty-cycled either).
    always_on: bool = False
    mac_params: Optional[MacParams] = None
    allocation_params: Optional[AllocationParams] = None
    forwarding_params: Optional[ForwardingParams] = None
    drip_params: Optional[DripParams] = None
    rpl_params: Optional[RplParams] = None
    orpl_params: Optional[OrplParams] = None
    #: Enable the §III-C4 countermeasure ("Re-Tele" in Figure 7).
    re_tele: bool = False
    #: Disable to ablate opportunistic forwarding (strict encoded path).
    opportunistic: bool = True
    #: Collection traffic inter-packet interval; None disables collection.
    collection_ipi: Optional[int] = 10 * MINUTE
    #: WiFi interferer overrides (position, intensity); channel decides coupling.
    wifi_params: Optional[WifiParams] = None
    #: Slow flat fading sigma (dB); the link burstiness behind the paper's
    #: dynamics. 0 disables. The clean-channel testbed behaves like a gentle
    #: environment; WiFi interference (channel 19) adds the harsher bursts.
    fading_sigma_db: float = 2.0
    #: Fault-injection plan (see :mod:`repro.faults`); None = no faults.
    faults: Optional[FaultPlan] = None
    #: Spatial channel dispatch (see docs/performance.md): None/False keeps
    #: the dense all-pairs gain path; True enables grid-hash culling with
    #: default :class:`SpatialIndexParams`; a params instance (or dict, for
    #: specs round-tripped through JSON) tunes the interference floor, the
    #: shadowing margin, and the cell size. Behaviour is bit-identical
    #: either way (the golden corpus holds both paths to the same digests);
    #: only memory and time change — which is why the field is part of the
    #: config fingerprint only when enabled.
    spatial_index: Union[None, bool, Dict[str, Any], SpatialIndexParams] = None
    #: Mobility process (see :mod:`repro.topology.mobility`); None = every
    #: node stays put, bit-identical to pre-mobility behaviour.
    mobility: Union[None, Dict[str, Any], MobilityParams] = None
    #: Battery depletion (see :mod:`repro.radio.battery`); None = nodes
    #: never run out of charge, bit-identical to pre-battery behaviour.
    battery: Union[None, Dict[str, Any], BatteryParams] = None
    #: Radio profile name (see :mod:`repro.radio.profiles`); None = the
    #: default CC2420 profile, bit-identical to pre-registry behaviour and
    #: omitted from :meth:`to_dict` so existing fingerprints are unchanged.
    radio_profile: Optional[str] = None

    def __post_init__(self) -> None:
        self.spatial_index = _normalize_spatial_index(self.spatial_index)
        self.mobility = _normalize_params(self.mobility, MobilityParams, "mobility")
        self.battery = _normalize_params(self.battery, BatteryParams, "battery")
        # Fail fast on an unknown radio profile, same as unknown protocols.
        get_radio_profile(self.radio_profile)
        # Fail fast on an unknown protocol (or bad per-protocol params) at
        # config time — long before a channel, stacks, or a runner worker
        # exist. Registered plugins pass; see repro.protocols.
        REGISTRY.validate_config(self)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready dict: sorted keys at every level.

        Nested parameter dataclasses (``MacParams``, ``AllocationParams``, …)
        become sorted dicts, a :class:`~repro.topology.Deployment` topology
        serialises through its own ``to_dict``, and tuples become lists, so
        the output is stable across field/insertion order and suitable for
        content-addressed cache keys (see :mod:`repro.runner.taskspec`).

        ``faults`` is omitted entirely when None, and ``spatial_index`` when
        disabled, so configs keep the fingerprints (and thus cache entries)
        they had before those layers existed.
        """
        out = {
            f.name: _canonical_value(getattr(self, f.name))
            for f in sorted(dataclasses.fields(self), key=lambda f: f.name)
        }
        if out["faults"] is None:
            del out["faults"]
        if out["spatial_index"] is None:
            del out["spatial_index"]
        # Same omit-when-None rule: soak-free configs keep the fingerprints
        # (and cache entries) they had before the endurance layer existed.
        if out["mobility"] is None:
            del out["mobility"]
        if out["battery"] is None:
            del out["battery"]
        # Default radio profile is omitted too: pre-registry configs keep
        # their fingerprints (and cache entries) bit for bit.
        if out["radio_profile"] is None:
            del out["radio_profile"]
        return out


def _normalize_spatial_index(
    value: Union[None, bool, Dict[str, Any], SpatialIndexParams],
) -> Optional[SpatialIndexParams]:
    """Coerce the ``spatial_index`` knob to params-or-None.

    Accepts the ergonomic forms (``True``/``False``) and the JSON form a
    runner worker deserialises from a task spec, so every representation
    fingerprints identically.
    """
    if value is None or isinstance(value, SpatialIndexParams):
        return value
    if isinstance(value, bool):
        return SpatialIndexParams() if value else None
    if isinstance(value, dict):
        return SpatialIndexParams(**value)
    raise TypeError(f"spatial_index must be None, bool, dict, or SpatialIndexParams; got {value!r}")


def _normalize_params(value: Any, cls: type, label: str) -> Any:
    """Coerce an optional params field to instance-or-None.

    Accepts the JSON dict form a runner worker deserialises from a task
    spec (via the class's ``from_dict``), so every representation
    fingerprints identically.
    """
    if value is None or isinstance(value, cls):
        return value
    if isinstance(value, dict):
        return cls.from_dict(value)
    raise TypeError(f"{label} must be None, dict, or {cls.__name__}; got {value!r}")


def _canonical_value(value: Any) -> Any:
    """Recursively convert a config value to sorted, JSON-ready form."""
    if isinstance(value, Deployment):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical_value(getattr(value, f.name))
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        }
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


class Network:
    """A runnable simulated WSN with one remote-control protocol."""

    def __init__(self, config: Optional[NetworkConfig] = None, **overrides: object) -> None:
        if config is None:
            config = NetworkConfig()
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown NetworkConfig field: {key}")
            setattr(config, key, value)
        if isinstance(config.faults, dict):
            config.faults = FaultPlan.from_dict(config.faults)
        config.spatial_index = _normalize_spatial_index(config.spatial_index)
        config.mobility = _normalize_params(config.mobility, MobilityParams, "mobility")
        config.battery = _normalize_params(config.battery, BatteryParams, "battery")
        # Overrides bypass __post_init__; re-validate before building anything.
        REGISTRY.validate_config(config)
        #: The resolved radio profile every PHY/MAC decision dispatches on.
        self.radio_profile = get_radio_profile(config.radio_profile)
        self.config = config
        # Fresh network, fresh serial space: without this, repeating the same
        # run in one process stamps different control serials into traces and
        # breaks bit-identical reproducibility.
        reset_serials()
        if isinstance(config.topology, Deployment):
            self.deployment = config.topology
        else:
            try:
                factory = _TOPOLOGIES[config.topology]
            except KeyError:
                raise ValueError(
                    f"unknown topology {config.topology!r}; "
                    f"choose from {sorted(_TOPOLOGIES)} or pass a Deployment"
                ) from None
            self.deployment = factory(config.seed)
        self.sim = Simulator(seed=config.seed)
        # Ambient noise is the profile's call: the default profile builds the
        # historical CPM/constant models exactly; narrowband profiles (LoRa)
        # substitute their own thermal floor.
        noise_model = self.radio_profile.build_noise_model(config.noise, config.seed)
        if config.spatial_index is not None:
            # Spatial dispatch: derive audible lists from grid-hash culling
            # instead of materialising N² gains. The culling floor sits
            # 3·fading_sigma below the interference floor — exactly the
            # channel's audible floor — so the candidate set is a superset
            # of every audible pair (up to the shadowing margin) and the
            # derived channel state is bit-identical to the dense build.
            params = config.spatial_index
            spatial = SpatialChannel(
                self.deployment.positions,
                self.deployment.propagation,
                cull_floor_dbm=params.interference_floor_dbm
                - 3.0 * config.fading_sigma_db,
                shadow_sigma_multiple=params.shadow_sigma_multiple,
                cell_size_m=params.cell_size_m,
            )
            self.channel = Channel(
                self.sim,
                noise_model=noise_model,
                fading_sigma_db=config.fading_sigma_db,
                interference_floor_dbm=params.interference_floor_dbm,
                spatial=spatial,
                profile=self.radio_profile,
            )
        else:
            self.channel = Channel(
                self.sim,
                self.deployment.gains(),
                noise_model=noise_model,
                fading_sigma_db=config.fading_sigma_db,
                positions=self.deployment.positions,
                propagation=self.deployment.propagation,
                profile=self.radio_profile,
            )
        self.interferer: Optional[WifiInterferer] = None
        if config.zigbee_channel != 26 or config.wifi_params is not None:
            params = config.wifi_params or WifiParams.zigbee_channel(
                config.zigbee_channel
            )
            if config.wifi_params is None:
                # Put the access point just outside the field's corner.
                xs = [p[0] for p in self.deployment.positions]
                ys = [p[1] for p in self.deployment.positions]
                params.position = (max(xs) * 0.6, max(ys) * 0.6)
            self.interferer = WifiInterferer(
                self.sim, self.deployment.positions, self.deployment.propagation, params
            )
            self.channel.add_interferer(self.interferer)
        mac_params = config.mac_params
        if mac_params is None:
            # The profile's call: the default profile returns the historical
            # always-on preset (or None, i.e. the MAC's own defaults).
            mac_params = self.radio_profile.default_mac_params(config.always_on)
        self.sink = self.deployment.sink
        self.stacks: Dict[int, NodeStack] = {}
        for node_id in range(self.deployment.size):
            self.stacks[node_id] = NodeStack(
                self.sim,
                self.channel,
                node_id,
                is_root=(node_id == self.sink),
                tx_power_dbm=self.deployment.node_tx_power(node_id),
                mac_params=mac_params,
                always_on=True if config.always_on else None,
                profile=self.radio_profile,
            )
        self.controller = Controller(channel=self.channel)
        self.protocols: Dict[int, ControlProtocolAdapter] = {}
        self._build_protocol()
        self.collection: Optional[CollectionWorkload] = None
        if config.collection_ipi is not None:
            self.collection = CollectionWorkload(
                self.sim, self.stacks, ipi=config.collection_ipi
            )
        self.metrics = NetworkMetrics(self.sim, self.stacks)
        self.control_metrics = ControlMetrics()
        self._records_by_key: Dict[Tuple[str, Hashable], ControlRecord] = {}
        self._next_index = 0
        self._started = False
        #: Controls sent while the controller's registered code for the
        #: destination disagreed with the node's live code (stale-address
        #: forwarding attempts — a churn metric).
        self.stale_code_sends = 0
        #: Cross-source parent-kick dedupe (faults vs mobility). Always
        #: present: with no mobility it only ever sees fault kicks, which it
        #: never suppresses, so pre-guard runs replay bit-identically.
        self.churn_guard = ChurnGuard(self.sim)
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None:
            self.fault_injector = FaultInjector(self, config.faults)
        self.mobility: Optional[MobilityDriver] = None
        if config.mobility is not None:
            self.mobility = MobilityDriver(self, config.mobility)
        self.battery: Optional[DepletionMonitor] = None
        if config.battery is not None:
            if self.fault_injector is None:
                # Battery deaths thread through the injector's crash
                # machinery; give it an empty, never-armed plan.
                self.fault_injector = FaultInjector(
                    self, FaultPlan(events=(), auto_arm=False, name="battery")
                )
            self.battery = DepletionMonitor(self, config.battery)

    # ---------------------------------------------------------------- wiring
    def _build_protocol(self) -> None:
        """Build per-node adapters for the configured protocol (registry)."""
        self.protocols = REGISTRY.build_instances(self)
        self._sink_adapter: Optional[ControlProtocolAdapter] = self.protocols.get(
            self.sink
        )

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Start every stack, protocol, workload, and the interferer."""
        if self._started:
            return
        self._started = True
        for stack in self.stacks.values():
            stack.start()
        for adapter in self.protocols.values():
            adapter.start()
        if self.collection is not None:
            self.collection.start()
        if self.interferer is not None:
            self.interferer.start()
        if self.mobility is not None:
            self.mobility.start()
        if self.battery is not None:
            self.battery.start()
        if self.fault_injector is not None and self.fault_injector.plan.auto_arm:
            self.fault_injector.arm()

    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` (starting it if needed)."""
        self.start()
        self.sim.run(until=self.sim.now + round(seconds * SECOND))

    # ------------------------------------------------------------ convergence
    def routed_fraction(self) -> float:
        """Fraction of nodes with a CTP route."""
        return sum(1 for s in self.stacks.values() if s.routing.has_route) / len(
            self.stacks
        )

    def _named_coverage(self, metric: str) -> float:
        """The sink adapter's coverage if it publishes ``metric``, else 0."""
        adapter = self._sink_adapter
        if adapter is None or adapter.coverage_metric != metric:
            return 0.0
        return adapter.coverage_fraction()

    def coded_fraction(self) -> float:
        """Fraction of nodes holding a TeleAdjusting path code."""
        return self._named_coverage("coded_fraction")

    def rpl_routed_fraction(self) -> float:
        """Fraction of destinations in the sink's RPL table."""
        return self._named_coverage("rpl_routed_fraction")

    def orpl_coverage_fraction(self) -> float:
        """Fraction of nodes the sink's bloom claims."""
        return self._named_coverage("orpl_coverage_fraction")

    def converge_settle_seconds(self) -> float:
        """Extra settle time the protocol wants after :meth:`converge`."""
        adapter = self._sink_adapter
        return adapter.settle_seconds() if adapter is not None else 0.0

    def converge(
        self,
        max_seconds: float = 600.0,
        check_interval: float = 10.0,
        target: float = 1.0,
    ) -> bool:
        """Run until the protocol's addressing state covers ``target`` of nodes.

        What "covers" means is the adapter's call — path codes assigned for
        TeleAdjusting (the controller is snapshotted on success), sink
        routing-table coverage for RPL, bloom claims for ORPL, plain CTP
        route acquisition for Drip and bare CTP.
        """
        self.start()
        deadline = self.sim.now + round(max_seconds * SECOND)
        adapter = self._sink_adapter
        check = (
            adapter.coverage_fraction if adapter is not None else self.routed_fraction
        )
        while True:
            if check() >= target:
                break
            if self.sim.now >= deadline:
                break
            self.sim.run(
                until=min(self.sim.now + round(check_interval * SECOND), deadline)
            )
        converged = check() >= target
        if adapter is not None:
            adapter.on_converged()
        return converged

    # ------------------------------------------------------------- controls
    def send_control(self, destination: int, payload: object = None) -> ControlRecord:
        """Issue one remote-control request and return its live record.

        The record fills in as the simulation advances (delivery at the
        destination, end-to-end ack at the sink). The sink's adapter owns the
        protocol-specific send path; the harness only books the record.
        """
        record = ControlRecord(
            index=self._next_index,
            destination=destination,
            hop_count=self.stacks[destination].routing.hop_count,
            sent_at=self.sim.now,
        )
        self._next_index += 1
        self.control_metrics.add(record)
        adapter = self._sink_adapter
        if adapter is None:
            raise RuntimeError(f"protocol {self.config.protocol!r} cannot send controls")
        adapter.send_control(record, destination, payload)
        return record

    def drain_control_records(self, before_tick: int) -> List[ControlRecord]:
        """Remove and return control records sent before ``before_tick``.

        The memory-flatness primitive for endurance soaks: records old
        enough to have settled are pulled out of both per-run accumulators
        (the metrics list and the protocol pending-key map) and handed to
        the caller for windowed aggregation, so a multi-day run holds at
        most a couple of windows' worth of records at any instant. Normal
        experiments never call this — their accumulators behave exactly as
        before.
        """
        kept: List[ControlRecord] = []
        drained: List[ControlRecord] = []
        for record in self.control_metrics.records:
            (drained if record.sent_at < before_tick else kept).append(record)
        if drained:
            self.control_metrics.records = kept
            drained_ids = {id(record) for record in drained}
            self._records_by_key = {
                key: record
                for key, record in self._records_by_key.items()
                if id(record) not in drained_ids
            }
        return drained

    # -------------------------------------------------------------- helpers
    def non_sink_nodes(self) -> List[int]:
        """Every node id except the sink's."""
        return [n for n in self.stacks if n != self.sink]

    def protocol_at(self, node_id: int) -> Optional[ControlProtocolAdapter]:
        """The control-protocol adapter running on a node."""
        return self.protocols.get(node_id)
