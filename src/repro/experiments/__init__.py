"""Experiment drivers: one entry point per table/figure of the paper.

All drivers build on :class:`repro.experiments.harness.Network`, which wires
the full stack for a deployment and one control protocol. See DESIGN.md §4
for the experiment-to-module index.
"""

from repro.experiments.harness import Network, NetworkConfig
from repro.experiments.codestats import (
    code_construction_run,
    code_length_by_hop,
    children_by_hop,
    convergence_beacons,
    reverse_hop_counts,
)
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.lora import lora_config, lora_grid_specs, run_lora

__all__ = [
    "Network",
    "NetworkConfig",
    "code_construction_run",
    "code_length_by_hop",
    "children_by_hop",
    "convergence_beacons",
    "reverse_hop_counts",
    "ComparisonResult",
    "run_comparison",
    "lora_config",
    "lora_grid_specs",
    "run_lora",
]
