"""Long-range (LoRa-class) tele-vs-drip runs over a profile-derived field.

The radio-profile registry's end-to-end proof: the same protocol stacks the
paper evaluates on CC2420 run unchanged over a sub-kbps, km-range radio.
One :func:`run_lora` call plays one cell of a {tele, drip, …} × seed grid
on a :func:`~repro.topology.profile_field` deployment whose node spacing is
derived from the profile's own usable link range — kilometres apart for
LoRa, where a 40-byte frame costs ~0.57 s of airtime and the MAC is
p-persistent CSMA rather than LPL.

Every schedule number here is stretched relative to the CC2420 comparison:
at 976 bps a control packet plus its feedback occupy the channel for
seconds, so controls go out ~per-90-s, convergence gets tens of minutes,
and the drain window is minutes rather than seconds. Radios run always-on
(class-C style); duty-cycled LoRa wake-up would add nothing to what the
comparison already measures and would multiply latency by the 12 s wake
interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence

from repro.baselines.drip import DripParams
from repro.core.allocation import AllocationParams
from repro.core.forwarding import ForwardingParams
from repro.experiments.harness import Network, NetworkConfig
from repro.protocols import resolve_variant
from repro.sim.units import MILLISECOND, SECOND
from repro.topology import profile_field
from repro.workloads.control import ControlSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.taskspec import TaskSpec

#: Default schedule of :func:`run_lora`, shared with the runner's
#: :func:`repro.runner.taskspec.lora_spec` so a spec built with defaults
#: hashes identically to a call made with defaults. A 25-node LoRa field
#: converges in minutes of simulated time (beacons Trickle from 8 s), and
#: sub-kbps forwarding needs a minutes-scale drain for in-flight feedback.
LORA_DEFAULTS = {
    "n_controls": 8,
    "control_interval_s": 90.0,
    "converge_seconds": 1800.0,
    "drain_seconds": 300.0,
}


def lora_config(
    variant: str,
    seed: int = 0,
    radio_profile: str = "lora",
    n_nodes: int = 25,
) -> NetworkConfig:
    """The :class:`NetworkConfig` one long-range cell runs on.

    Exposed (like :func:`repro.experiments.comparison.config_for`) so the
    runner's cache key fingerprints the *derived* configuration — the
    profile-derived field topology and every stretched protocol timer.

    Protocol timers scale with airtime, not with the protocol logic: the
    allocation round, request retry, beacon debounce, end-to-end timeout
    and Drip's Trickle floor all grow by roughly the CC2420→LoRa airtime
    ratio so the state machines see the same *relative* timing they were
    designed for.
    """
    protocol, overrides = resolve_variant(variant)
    deployment = profile_field(radio_profile, n=n_nodes, seed=seed)
    forwarding = ForwardingParams(
        e2e_timeout=300 * SECOND,
        sink_retry_interval=60 * SECOND,
        stale_ttl=60 * SECOND,
        neighbor_fresh_ttl=300 * SECOND,
        re_tele=bool(overrides.get("re_tele", False)),
        opportunistic=bool(overrides.get("opportunistic", True)),
    )
    return NetworkConfig(
        topology=deployment,
        protocol=protocol,
        seed=seed,
        radio_profile=radio_profile,
        # Class-C style: receivers always listening; the p-CSMA adapter
        # still prices every transmission through the persistence gate.
        always_on=True,
        # A 10-minute-IPI collection flow would eat most of a 976 bps
        # channel; the long-range cells measure control traffic only.
        collection_ipi=None,
        allocation_params=AllocationParams(
            round_duration=4 * SECOND,
            request_interval=20 * SECOND,
            old_code_ttl=600 * SECOND,
            beacon_debounce=2 * SECOND,
        ),
        forwarding_params=forwarding,
        drip_params=DripParams(i_min=8 * SECOND),
        **{
            k: v
            for k, v in overrides.items()
            if k not in ("re_tele", "opportunistic")
        },
    )


def lora_grid_specs(
    variants: Sequence[str],
    seeds: Sequence[int],
    radio_profile: str = "lora",
    **schedule: Any,
) -> List["TaskSpec"]:
    """The long-range grid as runner task specs: variant × seed.

    One canonical grid builder shared by the CLI and tests, so the cell
    ordering (and with it the grid's journal fingerprint) is identical
    everywhere a lora grid is launched.
    """
    from repro.runner import lora_spec

    return [
        lora_spec(variant, seed=seed, radio_profile=radio_profile, **schedule)
        for variant in variants
        for seed in seeds
    ]


def run_lora(
    variant: str,
    seed: int = 0,
    radio_profile: str = "lora",
    n_controls: int = LORA_DEFAULTS["n_controls"],
    control_interval_s: float = LORA_DEFAULTS["control_interval_s"],
    converge_seconds: float = LORA_DEFAULTS["converge_seconds"],
    drain_seconds: float = LORA_DEFAULTS["drain_seconds"],
) -> Dict[str, Any]:
    """Run one long-range cell and return its JSON-ready result dict."""
    config = lora_config(variant, seed=seed, radio_profile=radio_profile)
    net = Network(config)
    converged = net.converge(max_seconds=converge_seconds, target=0.97)
    settle = net.converge_settle_seconds()
    if settle > 0:
        net.run(settle)
    net.metrics.mark()
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(
            destination, payload={"index": index}
        ),
        destinations=net.non_sink_nodes(),
        interval=round(control_interval_s * SECOND),
        count=n_controls,
        rng_name=f"lora-controls-{variant}-{radio_profile}-{seed}",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * control_interval_s + drain_seconds)
    metrics = net.control_metrics
    profile = net.radio_profile
    return {
        "variant": variant,
        "radio_profile": radio_profile,
        "seed": seed,
        "converged": bool(converged),
        "n_nodes": len(net.stacks),
        "n_controls": len(metrics),
        "pdr": metrics.pdr(),
        "mean_latency_s": metrics.mean_latency(),
        "tx_per_control": net.metrics.tx_per_control_packet(len(metrics)),
        "duty_cycle": net.metrics.mean_duty_cycle(),
        "airtime_40b_ms": profile.packet_airtime(40) // MILLISECOND,
        "bit_rate_bps": profile.bit_rate_bps,
        "events_executed": net.sim.events_executed,
    }
