"""Endurance soaks: multi-day sim-time runs under churn and depletion.

The paper's evaluation is minutes of sim time on static, mains-fed nodes;
a soak asks the question the short grids cannot: *do path codes stay
usable — and recover cheaply — when the tree churns continuously and nodes
die for good?* One soak cell runs a protocol variant (``tele``/``drip``/
``rpl``/``orpl`` via the registry) for hours-to-days of sim time with

- **mobility** (:mod:`repro.topology.mobility`) walking a fraction of the
  nodes, continuously re-pricing links and kicking re-parenting;
- **battery depletion** (:mod:`repro.radio.battery`) draining per-node
  budgets until nodes brown out permanently (threaded through the fault
  injector's crash machinery);
- **code-space reclamation** (``AllocationParams.reclaim_child_ttl``)
  freeing dead children's positions so the space doesn't leak.

Metrics stream: the run is chopped into fixed windows; each boundary
drains the settled control records out of the in-memory accumulators and
folds them — with duty-cycle/charge deltas and churn counters — into one
flat JSONL line (:class:`repro.metrics.streaming.StreamingMetrics`). Peak
memory is O(nodes), independent of soak length; the running SHA-256 over
the emitted lines plus the end-state counters gives a determinism token
(:func:`soak_digest`) without retaining the stream.

Zero-mobility, zero-depletion soaks build networks whose configs
fingerprint exactly as before this module existed, and the golden corpus
pins that.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.core.allocation import AllocationParams
from repro.experiments.comparison import config_for
from repro.experiments.harness import _TOPOLOGIES, Network, NetworkConfig
from repro.metrics.streaming import StreamingMetrics
from repro.radio.battery import BatteryParams
from repro.sim.units import SECOND, to_seconds
from repro.topology.mobility import MobilityParams

#: Default schedule for one soak cell: 24 h of sim time, 10-minute
#: windows, one control a minute (the paper's cadence). Smoke cells (CI)
#: override duration down to minutes.
SOAK_DEFAULTS: Dict[str, Any] = {
    "duration_s": 86_400.0,
    "window_s": 600.0,
    "control_interval_s": 60.0,
    "converge_seconds": 240.0,
    "churn_intensity": 1.0,
    "battery_mah": 5.0,
    "reclaim_ttl_s": 600.0,
    "tail_windows": 48,
}

#: Fraction of non-sink nodes walking at churn intensity 1.0.
_BASE_MOVER_FRACTION = 0.15


def soak_mobility(
    churn_intensity: float, converge_seconds: float
) -> Optional[MobilityParams]:
    """Mobility knobs for a churn intensity (None when intensity is 0)."""
    if churn_intensity <= 0.0:
        return None
    return MobilityParams(
        model="waypoint",
        fraction=min(1.0, _BASE_MOVER_FRACTION * churn_intensity),
        speed_mps=(0.5, 1.5),
        # Higher intensity pauses less: more churn per mover, not just
        # more movers.
        pause_s=(
            10.0 / max(churn_intensity, 1.0),
            60.0 / max(churn_intensity, 1.0),
        ),
        step_s=2.0,
        start_s=converge_seconds,
        kick_routing=True,
    )


def soak_battery(
    battery_mah: Optional[float], n_nodes: int, sink: int
) -> Optional[BatteryParams]:
    """Battery knobs: staggered per-node budgets (None disables depletion).

    Budgets spread deterministically over ``[0.7, 1.3] × battery_mah`` by
    node id, so deaths stagger across the run instead of landing in one
    window — that staggering *is* the degradation curve.
    """
    if battery_mah is None or battery_mah <= 0.0:
        return None
    spread = {}
    others = [n for n in range(n_nodes) if n != sink]
    span = max(len(others) - 1, 1)
    for rank, node in enumerate(others):
        spread[node] = round(battery_mah * (0.7 + 0.6 * rank / span), 6)
    return BatteryParams(
        capacity_mah=battery_mah,
        per_node_mah=spread,
        check_interval_s=30.0,
        sink_powered=True,
    )


def soak_config(
    variant: str = "tele",
    seed: int = 0,
    zigbee_channel: int = 26,
    churn_intensity: float = SOAK_DEFAULTS["churn_intensity"],
    battery_mah: Optional[float] = SOAK_DEFAULTS["battery_mah"],
    reclaim_ttl_s: Optional[float] = SOAK_DEFAULTS["reclaim_ttl_s"],
    converge_seconds: float = SOAK_DEFAULTS["converge_seconds"],
) -> NetworkConfig:
    """The :class:`NetworkConfig` one soak cell runs on (fingerprintable).

    Starts from the comparison grid's config (indoor testbed, duty-cycled
    LPL, collection traffic — the paper's stand) and layers the endurance
    knobs on top. With ``churn_intensity=0`` and ``battery_mah=None`` the
    returned config is *identical* to the comparison config: no mobility,
    no battery, no reclamation, same fingerprint fields.
    """
    config = config_for(variant, zigbee_channel, seed)
    config.mobility = soak_mobility(churn_intensity, converge_seconds)
    if isinstance(config.topology, str):
        deployment = _TOPOLOGIES[config.topology](seed)
    else:
        deployment = config.topology
    config.battery = soak_battery(battery_mah, deployment.size, deployment.sink)
    if (
        reclaim_ttl_s is not None
        and (config.mobility is not None or config.battery is not None)
    ):
        params = config.allocation_params or AllocationParams()
        params.reclaim_child_ttl = round(reclaim_ttl_s * SECOND)
        config.allocation_params = params
    return config


def soak_digest(net: Network, stream_digest: str) -> str:
    """Determinism token for a finished soak.

    Control records were drained window-by-window, so unlike
    ``scale_state_digest`` the end state cannot carry them — instead the
    streaming hash (which folded every drained record's outcome into its
    window lines) stands in for the timeline, and the kernel clock/event
    counters plus every node's radio/MAC counters pin the end state.
    """
    sim = net.sim
    state = {
        "stream": stream_digest,
        "now": sim.now,
        "events": sim.events_executed,
        "nodes": [
            [
                node_id,
                stack.radio.tx_count,
                stack.radio.on_time(),
                stack.mac.trains_sent,
                stack.mac.copies_sent,
                stack.mac.acks_sent,
                stack.mac.frames_delivered,
            ]
            for node_id, stack in sorted(net.stacks.items())
        ],
    }
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_soak(
    variant: str = "tele",
    seed: int = 0,
    zigbee_channel: int = 26,
    duration_s: float = SOAK_DEFAULTS["duration_s"],
    window_s: float = SOAK_DEFAULTS["window_s"],
    control_interval_s: float = SOAK_DEFAULTS["control_interval_s"],
    converge_seconds: float = SOAK_DEFAULTS["converge_seconds"],
    churn_intensity: float = SOAK_DEFAULTS["churn_intensity"],
    battery_mah: Optional[float] = SOAK_DEFAULTS["battery_mah"],
    reclaim_ttl_s: Optional[float] = SOAK_DEFAULTS["reclaim_ttl_s"],
    tail_windows: int = SOAK_DEFAULTS["tail_windows"],
    jsonl_path: Optional[str] = None,
    config: Optional[NetworkConfig] = None,
) -> Dict[str, Any]:
    """Run one endurance soak cell and return its JSON-ready result.

    The degradation curve itself is *streamed*, not returned: every window
    goes to ``jsonl_path`` (when given) the moment it closes, and only the
    last ``tail_windows`` windows ride along in the result for display.
    Running totals (delivery, latency) are folded incrementally. ``config``
    overrides the whole network config (the endurance knobs still shape
    the schedule around it).
    """
    if duration_s <= 0.0:
        raise ValueError("duration_s must be positive")
    if window_s <= 0.0:
        raise ValueError("window_s must be positive")
    if config is None:
        config = soak_config(
            variant,
            seed,
            zigbee_channel,
            churn_intensity=churn_intensity,
            battery_mah=battery_mah,
            reclaim_ttl_s=reclaim_ttl_s,
            converge_seconds=converge_seconds,
        )
    started = time.perf_counter()
    net = Network(config)
    converged = net.converge(max_seconds=converge_seconds, target=0.9)

    jsonl_file = open(jsonl_path, "w", encoding="utf-8") if jsonl_path else None
    tail: deque = deque(maxlen=max(tail_windows, 1))
    totals = {"sent": 0, "delivered": 0, "acked": 0, "latency_sum": 0.0}

    def write_window(window: Dict[str, Any]) -> None:
        tail.append(window)
        totals["sent"] += window["sent"]
        totals["delivered"] += window["delivered"]
        totals["acked"] += window["acked"]
        if window["latency_mean_s"] is not None:
            totals["latency_sum"] += window["latency_mean_s"] * window["delivered"]
        if jsonl_file is not None:
            jsonl_file.write(json.dumps(window, sort_keys=True, allow_nan=False))
            jsonl_file.write("\n")
            jsonl_file.flush()

    streamer = StreamingMetrics(net, window_s, writer=write_window)

    # Control workload: the paper's one-control-a-minute cadence, from a
    # fresh named stream (destinations include nodes that later die — the
    # resulting delivery drop IS the degradation signal). Deliberately not
    # ControlSchedule: its history list grows per control.
    rng = net.sim.rng(f"soak-controls-{variant}-{zigbee_channel}-{seed}")
    destinations = net.non_sink_nodes()
    interval_ticks = round(control_interval_s * SECOND)
    deadline = net.sim.now + round(duration_s * SECOND)

    def fire_control() -> None:
        if net.sim.now >= deadline:
            return
        net.send_control(rng.choice(destinations), payload=None)
        net.sim.schedule(interval_ticks, fire_control)

    net.sim.schedule(1 * SECOND, fire_control)

    # Window loop: run one window, drain what has settled, stream it.
    window_ticks = round(window_s * SECOND)
    try:
        while net.sim.now < deadline:
            net.run(to_seconds(min(window_ticks, deadline - net.sim.now)))
            # One window of grace: records younger than a window may still
            # have acks in flight; they settle into the next window.
            drained = net.drain_control_records(net.sim.now - window_ticks)
            streamer.close_window(drained)
        # Flush stragglers (no grace — the run is over).
        drained = net.drain_control_records(net.sim.now + 1)
        if drained:
            streamer.close_window(drained)
    finally:
        if jsonl_file is not None:
            jsonl_file.close()

    wall_s = time.perf_counter() - started
    stream_digest = streamer.stream_digest
    reclaimed = 0
    for adapter in net.protocols.values():
        allocation = getattr(adapter, "allocation", None)
        if allocation is not None:
            reclaimed += allocation.positions_reclaimed
    sent = totals["sent"]
    delivered = totals["delivered"]
    return {
        "variant": variant,
        "seed": seed,
        "zigbee_channel": zigbee_channel,
        "size": net.deployment.size,
        "duration_s": duration_s,
        "window_s": window_s,
        "churn_intensity": churn_intensity,
        "battery_mah": battery_mah,
        "converged": bool(converged),
        "windows": streamer.windows_emitted,
        "controls_sent": sent,
        "controls_delivered": delivered,
        "delivery": (delivered / sent) if sent else None,
        "mean_latency_s": (
            round(totals["latency_sum"] / delivered, 6) if delivered else None
        ),
        "mobility": net.mobility.summary() if net.mobility is not None else None,
        "battery": net.battery.summary() if net.battery is not None else None,
        "deaths": len(net.fault_injector.deaths) if net.fault_injector else 0,
        "positions_reclaimed": reclaimed,
        "kicks_suppressed": (
            (net.mobility.kicks_suppressed if net.mobility is not None else 0)
            + (
                net.fault_injector.parent_kicks_suppressed
                if net.fault_injector is not None
                else 0
            )
        ),
        "tail": list(tail),
        "events_executed": net.sim.events_executed,
        "wall_s": round(wall_s, 3),
        "events_per_sec": (
            round(net.sim.events_executed / wall_s, 1) if wall_s > 0 else 0.0
        ),
        "stream_digest": stream_digest,
        "soak_digest": soak_digest(net, stream_digest),
    }


def soak_grid_rows(result: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The tail windows as flat rows for table rendering (CLI report)."""
    return [
        {
            "t_s": w["t_s"],
            "delivery": w["delivery"],
            "latency_mean_s": w["latency_mean_s"],
            "first_control_s": w["first_control_s"],
            "duty_cycle": w["duty_cycle"],
            "re_tele": w["re_tele"],
            "backtracks": w["backtracks"],
            "alive": w["alive"],
            "reclaimed": w["reclaimed"],
        }
        for w in result.get("tail", ())
    ]
