"""Parameter sweeps and seed-averaged comparisons.

The paper evaluates one wake interval (512 ms), one density per field, and
averages "over at least 5 runs". This module provides the machinery for all
three axes:

- :func:`run_comparison_multi` — the paper's multi-run averaging: repeat a
  comparison cell over seeds and aggregate mean/min/max per metric.
- :func:`sweep_wake_interval` — how the LPL wake interval trades latency
  against duty cycle for a protocol.
- :func:`sweep_network_size` — how code length and delivery behave as the
  network grows (scalability, §IV-A's motivation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.harness import Network, NetworkConfig
from repro.mac.lpl import MacParams
from repro.metrics.stats import mean
from repro.sim.units import MILLISECOND, SECOND
from repro.topology import random_uniform
from repro.workloads.control import ControlSchedule


@dataclass
class AggregateMetric:
    """Mean/min/max of one metric over seeds."""

    values: List[float] = field(default_factory=list)

    def add(self, value: Optional[float]) -> None:
        """Add one element/record."""
        if value is not None:
            self.values.append(float(value))

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the aggregated values, or None."""
        return mean(self.values)

    @property
    def min(self) -> Optional[float]:
        """Smallest aggregated value, or None."""
        return min(self.values) if self.values else None

    @property
    def max(self) -> Optional[float]:
        """Largest aggregated value, or None."""
        return max(self.values) if self.values else None

    def summary(self) -> str:
        """Compact human-readable mean/min/max summary."""
        if not self.values:
            return "n/a"
        return f"{self.mean:.3f} [{self.min:.3f}..{self.max:.3f}] (n={len(self.values)})"


@dataclass
class MultiRunResult:
    """Seed-aggregated comparison cell."""

    variant: str
    zigbee_channel: int
    seeds: List[int]
    pdr: AggregateMetric
    tx_per_control: AggregateMetric
    duty_cycle: AggregateMetric
    latency: AggregateMetric
    runs: List[ComparisonResult] = field(default_factory=list)


def run_comparison_multi(
    variant: str,
    zigbee_channel: int = 26,
    seeds: Sequence[int] = (1, 2, 3),
    **kwargs: object,
) -> MultiRunResult:
    """Repeat :func:`run_comparison` over ``seeds`` and aggregate.

    This is the paper's "results are averaged over at least 5 runs"
    methodology; pass ``seeds=range(1, 6)`` to match it exactly.
    """
    result = MultiRunResult(
        variant=variant,
        zigbee_channel=zigbee_channel,
        seeds=list(seeds),
        pdr=AggregateMetric(),
        tx_per_control=AggregateMetric(),
        duty_cycle=AggregateMetric(),
        latency=AggregateMetric(),
    )
    for seed in seeds:
        run = run_comparison(variant, zigbee_channel=zigbee_channel, seed=seed, **kwargs)
        result.runs.append(run)
        result.pdr.add(run.pdr)
        result.tx_per_control.add(run.tx_per_control)
        result.duty_cycle.add(run.duty_cycle)
        result.latency.add(run.mean_latency)
    return result


@dataclass
class SweepPoint:
    """One configuration's outcome in a sweep."""

    x: float
    pdr: Optional[float]
    duty_cycle: Optional[float]
    mean_latency: Optional[float]
    detail: Dict[str, float] = field(default_factory=dict)


def _control_round(
    net: Network, n_controls: int, interval_s: float
) -> None:
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(destination, payload=index),
        destinations=net.non_sink_nodes(),
        interval=round(interval_s * SECOND),
        count=n_controls,
        rng_name="sweep-controls",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * interval_s + 60.0)


def sweep_wake_interval(
    wake_intervals_ms: Sequence[int] = (256, 512, 1024),
    protocol: str = "tele",
    seed: int = 1,
    n_controls: int = 12,
    converge_seconds: float = 240.0,
) -> List[SweepPoint]:
    """Latency/duty trade-off across LPL wake intervals.

    Expected shape: latency grows roughly linearly with the wake interval
    (per-hop rendezvous cost), idle duty cycle shrinks with it.
    """
    points: List[SweepPoint] = []
    for wake_ms in wake_intervals_ms:
        params = MacParams(wake_interval=wake_ms * MILLISECOND)
        net = Network(
            NetworkConfig(
                topology="indoor-testbed",
                protocol=protocol,
                seed=seed,
                mac_params=params,
            )
        )
        net.converge(max_seconds=converge_seconds, target=0.95)
        net.metrics.mark()
        _control_round(net, n_controls, interval_s=45.0)
        metrics = net.control_metrics
        points.append(
            SweepPoint(
                x=float(wake_ms),
                pdr=metrics.pdr(),
                duty_cycle=net.metrics.mean_duty_cycle(),
                mean_latency=metrics.mean_latency(),
            )
        )
    return points


def sweep_network_size(
    sizes: Sequence[int] = (10, 20, 40),
    field_density: float = 170.0,
    seed: int = 1,
    n_controls: int = 10,
) -> List[SweepPoint]:
    """Scalability: code length and delivery as the network grows.

    ``field_density`` is square metres per node; the field area scales with
    the node count so density (and hence tree depth growth) stays realistic.
    """
    points: List[SweepPoint] = []
    for size in sizes:
        side = (size * field_density) ** 0.5
        deployment = random_uniform(n=size, width=side, height=side, seed=seed)
        net = Network(
            NetworkConfig(
                topology=deployment,
                protocol="tele",
                seed=seed,
                always_on=True,
                collection_ipi=None,
                fading_sigma_db=0.0,
            )
        )
        net.converge(max_seconds=300.0, target=0.95)
        codes = [
            p.allocation.code.length
            for p in net.protocols.values()
            if p.allocation.code is not None
        ]
        net.metrics.mark()
        _control_round(net, n_controls, interval_s=20.0)
        metrics = net.control_metrics
        points.append(
            SweepPoint(
                x=float(size),
                pdr=metrics.pdr(),
                duty_cycle=net.metrics.mean_duty_cycle(),
                mean_latency=metrics.mean_latency(),
                detail={
                    "max_code_bits": float(max(codes)) if codes else 0.0,
                    "mean_code_bits": mean([float(c) for c in codes]) or 0.0,
                    "coded_fraction": net.coded_fraction(),
                },
            )
        )
    return points
