"""Parameter sweeps and seed-averaged comparisons.

The paper evaluates one wake interval (512 ms), one density per field, and
averages "over at least 5 runs". This module provides the machinery for all
three axes:

- :func:`run_comparison_multi` — the paper's multi-run averaging: repeat a
  comparison cell over seeds and aggregate mean/min/max per metric.
- :func:`sweep_wake_interval` — how the LPL wake interval trades latency
  against duty cycle for a protocol.
- :func:`sweep_network_size` — how code length and delivery behave as the
  network grows (scalability, §IV-A's motivation).

All three drivers execute through :class:`repro.runner.ParallelRunner`:
pass ``jobs=N`` to fan cells out over worker processes and ``cache_dir``
to reuse unchanged cells across invocations. ``jobs=1`` without a cache is
the historical serial path and produces bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, cast

from repro.experiments.comparison import ComparisonResult
from repro.experiments.harness import Network, NetworkConfig
from repro.mac.lpl import MacParams
from repro.metrics.stats import mean
from repro.protocols import TeleProtocolAdapter
from repro.runner import (
    CellExecutor,
    ParallelRunner,
    ResultCache,
    RunnerOutcome,
    TaskSpec,
    comparison_spec,
    network_size_spec,
    wake_interval_spec,
)
from repro.sim.units import MILLISECOND, SECOND
from repro.topology import random_uniform
from repro.workloads.control import ControlSchedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.telemetry import RunnerReport


@dataclass
class AggregateMetric:
    """Mean/min/max of one metric over seeds."""

    values: List[float] = field(default_factory=list)

    def add(self, value: Optional[float]) -> None:
        """Add one element/record."""
        if value is not None:
            self.values.append(float(value))

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the aggregated values, or None."""
        return mean(self.values)

    @property
    def min(self) -> Optional[float]:
        """Smallest aggregated value, or None."""
        return min(self.values) if self.values else None

    @property
    def max(self) -> Optional[float]:
        """Largest aggregated value, or None."""
        return max(self.values) if self.values else None

    def summary(self) -> str:
        """Compact human-readable mean/min/max summary."""
        if not self.values:
            return "n/a"
        return f"{self.mean:.3f} [{self.min:.3f}..{self.max:.3f}] (n={len(self.values)})"


@dataclass
class MultiRunResult:
    """Seed-aggregated comparison cell."""

    variant: str
    zigbee_channel: int
    seeds: List[int]
    pdr: AggregateMetric
    tx_per_control: AggregateMetric
    duty_cycle: AggregateMetric
    latency: AggregateMetric
    runs: List[ComparisonResult] = field(default_factory=list)
    #: Execution telemetry of the runner that produced :attr:`runs`
    #: (cells executed vs cached vs failed); None only on manual assembly.
    telemetry: Optional["RunnerReport"] = None


def _make_runner(
    jobs: int,
    cache_dir: Optional[str],
    runner: Optional[ParallelRunner],
    journal_dir: Optional[str] = None,
    resume: bool = False,
    executor: Optional["CellExecutor"] = None,
) -> ParallelRunner:
    if runner is not None:
        return runner
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ParallelRunner(
        jobs=jobs,
        cache=cache,
        journal_dir=journal_dir,
        resume=resume,
        executor=executor,
    )


def run_comparison_multi(
    variant: str,
    zigbee_channel: int = 26,
    seeds: Sequence[int] = (1, 2, 3),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[ParallelRunner] = None,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    executor: Optional["CellExecutor"] = None,
    **kwargs: object,
) -> MultiRunResult:
    """Repeat one comparison cell over ``seeds`` and aggregate.

    This is the paper's "results are averaged over at least 5 runs"
    methodology; pass ``seeds=range(1, 6)`` to match it exactly. ``jobs``,
    ``cache_dir``, or a pre-built ``runner`` route the per-seed cells
    through the execution engine; ``journal_dir``/``resume`` make the grid
    crash-resumable (see :mod:`repro.runner.journal`). A cell that keeps
    failing is dropped from the aggregates (visible in
    :attr:`MultiRunResult.telemetry`).
    """
    from repro.metrics.io import comparison_from_dict

    engine = _make_runner(jobs, cache_dir, runner, journal_dir, resume, executor)
    specs = [
        comparison_spec(variant, zigbee_channel=zigbee_channel, seed=seed, **kwargs)
        for seed in seeds
    ]
    outcomes = engine.run(specs)
    result = MultiRunResult(
        variant=variant,
        zigbee_channel=zigbee_channel,
        seeds=list(seeds),
        pdr=AggregateMetric(),
        tx_per_control=AggregateMetric(),
        duty_cycle=AggregateMetric(),
        latency=AggregateMetric(),
        telemetry=engine.last_report,
    )
    for outcome in outcomes:
        if outcome.result is None:
            continue
        run = comparison_from_dict(outcome.result)
        result.runs.append(run)
        result.pdr.add(run.pdr)
        result.tx_per_control.add(run.tx_per_control)
        result.duty_cycle.add(run.duty_cycle)
        result.latency.add(run.mean_latency)
    return result


@dataclass
class SweepPoint:
    """One configuration's outcome in a sweep."""

    x: float
    pdr: Optional[float]
    duty_cycle: Optional[float]
    mean_latency: Optional[float]
    detail: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (the runner's wire/cache format)."""
        return {
            "x": self.x,
            "pdr": self.pdr,
            "duty_cycle": self.duty_cycle,
            "mean_latency": self.mean_latency,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepPoint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            x=cast(float, data["x"]),
            pdr=cast(Optional[float], data["pdr"]),
            duty_cycle=cast(Optional[float], data["duty_cycle"]),
            mean_latency=cast(Optional[float], data["mean_latency"]),
            detail=dict(cast(Dict[str, float], data.get("detail") or {})),
        )


def _control_round(
    net: Network, n_controls: int, interval_s: float
) -> None:
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(destination, payload=index),
        destinations=net.non_sink_nodes(),
        interval=round(interval_s * SECOND),
        count=n_controls,
        rng_name="sweep-controls",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * interval_s + 60.0)


def wake_interval_point(
    wake_ms: int,
    protocol: str = "tele",
    seed: int = 1,
    n_controls: int = 12,
    converge_seconds: float = 240.0,
) -> SweepPoint:
    """One wake-interval sweep cell (top-level so workers can run it)."""
    params = MacParams(wake_interval=wake_ms * MILLISECOND)
    net = Network(
        NetworkConfig(
            topology="indoor-testbed",
            protocol=protocol,
            seed=seed,
            mac_params=params,
        )
    )
    net.converge(max_seconds=converge_seconds, target=0.95)
    net.metrics.mark()
    _control_round(net, n_controls, interval_s=45.0)
    metrics = net.control_metrics
    return SweepPoint(
        x=float(wake_ms),
        pdr=metrics.pdr(),
        duty_cycle=net.metrics.mean_duty_cycle(),
        mean_latency=metrics.mean_latency(),
    )


def network_size_point(
    size: int,
    field_density: float = 170.0,
    seed: int = 1,
    n_controls: int = 10,
) -> SweepPoint:
    """One network-size sweep cell (top-level so workers can run it)."""
    side = (size * field_density) ** 0.5
    deployment = random_uniform(n=size, width=side, height=side, seed=seed)
    net = Network(
        NetworkConfig(
            topology=deployment,
            protocol="tele",
            seed=seed,
            always_on=True,
            collection_ipi=None,
            fading_sigma_db=0.0,
        )
    )
    net.converge(max_seconds=300.0, target=0.95)
    codes = [
        adapter.path_code.length
        for adapter in net.protocols.values()
        if isinstance(adapter, TeleProtocolAdapter) and adapter.path_code is not None
    ]
    net.metrics.mark()
    _control_round(net, n_controls, interval_s=20.0)
    metrics = net.control_metrics
    return SweepPoint(
        x=float(size),
        pdr=metrics.pdr(),
        duty_cycle=net.metrics.mean_duty_cycle(),
        mean_latency=metrics.mean_latency(),
        detail={
            "max_code_bits": float(max(codes)) if codes else 0.0,
            "mean_code_bits": mean([float(c) for c in codes]) or 0.0,
            "coded_fraction": net.coded_fraction(),
        },
    )


def _run_points(
    specs: List[TaskSpec],
    jobs: int,
    cache_dir: Optional[str],
    runner: Optional[ParallelRunner],
    journal_dir: Optional[str] = None,
    resume: bool = False,
    executor: Optional["CellExecutor"] = None,
) -> List[SweepPoint]:
    engine = _make_runner(jobs, cache_dir, runner, journal_dir, resume, executor)
    outcomes: List[RunnerOutcome] = engine.run(specs)
    return [
        SweepPoint.from_dict(o.result) for o in outcomes if o.result is not None
    ]


def sweep_wake_interval(
    wake_intervals_ms: Sequence[int] = (256, 512, 1024),
    protocol: str = "tele",
    seed: int = 1,
    n_controls: int = 12,
    converge_seconds: float = 240.0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[ParallelRunner] = None,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    executor: Optional["CellExecutor"] = None,
) -> List[SweepPoint]:
    """Latency/duty trade-off across LPL wake intervals.

    Expected shape: latency grows roughly linearly with the wake interval
    (per-hop rendezvous cost), idle duty cycle shrinks with it.
    """
    specs = [
        wake_interval_spec(
            wake_ms,
            protocol=protocol,
            seed=seed,
            n_controls=n_controls,
            converge_seconds=converge_seconds,
        )
        for wake_ms in wake_intervals_ms
    ]
    return _run_points(specs, jobs, cache_dir, runner, journal_dir, resume, executor)


def sweep_network_size(
    sizes: Sequence[int] = (10, 20, 40),
    field_density: float = 170.0,
    seed: int = 1,
    n_controls: int = 10,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[ParallelRunner] = None,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    executor: Optional["CellExecutor"] = None,
) -> List[SweepPoint]:
    """Scalability: code length and delivery as the network grows.

    ``field_density`` is square metres per node; the field area scales with
    the node count so density (and hence tree depth growth) stays realistic.
    """
    specs = [
        network_size_spec(
            size, field_density=field_density, seed=seed, n_controls=n_controls
        )
        for size in sizes
    ]
    return _run_points(specs, jobs, cache_dir, runner, journal_dir, resume, executor)
