"""Rendering experiment results as ASCII tables and CSV.

The benchmark suite prints through these helpers, and the CLI
(``python -m repro``) uses them to regenerate any paper table/figure as
text or CSV for external plotting.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.comparison import ComparisonResult


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """A minimal fixed-width table (no external dependencies)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def csv_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV text (quoted minimally; values here never contain commas)."""
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        out.write(",".join(str(cell) for cell in row) + "\n")
    return out.getvalue()


def comparison_rows(results: Dict[tuple, ComparisonResult]) -> List[List[object]]:
    """Rows for the protocol-comparison summary (Fig 7/9/10 + Table III)."""
    rows: List[List[object]] = []
    for (variant, channel), result in sorted(results.items()):
        rows.append(
            [
                variant,
                channel,
                f"{result.pdr:.3f}" if result.pdr is not None else "n/a",
                f"{result.tx_per_control:.2f}" if result.tx_per_control else "n/a",
                f"{result.duty_cycle * 100:.2f}" if result.duty_cycle else "n/a",
                f"{result.mean_latency:.2f}" if result.mean_latency else "n/a",
            ]
        )
    return rows


COMPARISON_HEADERS = ["protocol", "channel", "pdr", "tx_per_control", "duty_pct", "latency_s"]


def pdr_by_hop_rows(results: Dict[str, ComparisonResult]) -> List[List[object]]:
    """Figure 7 rows: one per (protocol, hop)."""
    rows: List[List[object]] = []
    for variant, result in sorted(results.items()):
        for hop, ratio in sorted(result.pdr_by_hop.items()):
            rows.append([variant, hop, f"{ratio:.3f}"])
    return rows


def latency_by_hop_rows(results: Dict[str, ComparisonResult]) -> List[List[object]]:
    """Figure 10 rows: one per (protocol, hop)."""
    rows: List[List[object]] = []
    for variant, result in sorted(results.items()):
        for hop, latency in sorted(result.latency_by_hop.items()):
            rows.append([variant, hop, f"{latency:.3f}"])
    return rows


def athx_rows(results: Dict[str, ComparisonResult]) -> List[List[object]]:
    """Figure 8 rows: every delivered packet's (protocol, ctp_hops, athx)."""
    rows: List[List[object]] = []
    for variant, result in sorted(results.items()):
        for hop, athx in result.athx_samples:
            rows.append([variant, hop, athx])
    return rows


def code_length_rows(by_hop: Dict[int, List[int]]) -> List[List[object]]:
    """Figure 6(a) / Table II rows from a code-length grouping."""
    rows: List[List[object]] = []
    for hop, lengths in sorted(by_hop.items()):
        if hop >= 10**4:
            continue
        rows.append(
            [
                hop,
                len(lengths),
                f"{sum(lengths) / len(lengths):.2f}",
                min(lengths),
                max(lengths),
            ]
        )
    return rows


CODE_LENGTH_HEADERS = ["hop", "n", "avg_bits", "min_bits", "max_bits"]
