"""Protocol-comparison runs: Figures 7–10 and Table III.

One :func:`run_comparison` call reproduces one cell of the paper's testbed
matrix: {TeleAdjusting, Re-Tele, Drip, RPL} × {channel 26, channel 19}. The
result object carries every aggregate the tables/figures need, so the bench
for each figure re-slices the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import Network, NetworkConfig
from repro.metrics.control import ControlMetrics
from repro.protocols import resolve_variant, variant_names
from repro.sim.units import SECOND
from repro.workloads.control import ControlSchedule

#: Protocol front-end names accepted by :func:`run_comparison`, snapshotted
#: from the protocol registry at import time. The paper evaluates the first
#: four; "orpl" is our extension baseline (related work [22], included to
#: quantify the bloom-false-positive criticism). Protocols registered later
#: via :func:`repro.protocols.register_protocol` are accepted too — call
#: :func:`repro.protocols.variant_names` for the live list.
VARIANTS = tuple(variant_names())

#: Default schedule of :func:`run_comparison`, shared with the runner's
#: :func:`repro.runner.taskspec.comparison_spec` so a spec built with
#: defaults hashes identically to a call made with defaults.
COMPARISON_DEFAULTS = {
    "n_controls": 30,
    "control_interval_s": 15.0,
    "converge_seconds": 240.0,
    "drain_seconds": 60.0,
}


@dataclass
class ComparisonResult:
    """Everything one run contributes to Figures 7–10 / Table III."""

    variant: str
    zigbee_channel: int
    seed: int
    n_controls: int
    pdr: Optional[float]
    pdr_by_hop: Dict[int, float]
    latency_by_hop: Dict[int, float]
    mean_latency: Optional[float]
    tx_per_control: Optional[float]
    duty_cycle: Optional[float]
    athx_samples: List[Tuple[int, int]] = field(default_factory=list)
    control_metrics: Optional[ControlMetrics] = None
    #: Kernel events dispatched during the run (the events/sec numerator in
    #: runner telemetry and the BENCH_kernel.json perf canary).
    events_executed: Optional[int] = None


def config_for(variant: str, channel: int, seed: int) -> NetworkConfig:
    """The :class:`NetworkConfig` one comparison cell runs on.

    Exposed (rather than inlined in :func:`_network_for`) so the runner's
    cache key can fingerprint the *derived* configuration: any change to
    this mapping invalidates cached cells.
    """
    protocol, overrides = resolve_variant(variant)
    return NetworkConfig(
        topology="indoor-testbed",
        protocol=protocol,
        seed=seed,
        zigbee_channel=channel,
        **overrides,
    )


def _network_for(variant: str, channel: int, seed: int) -> Network:
    return Network(config_for(variant, channel, seed))


def run_comparison(
    variant: str,
    zigbee_channel: int = 26,
    seed: int = 0,
    n_controls: int = COMPARISON_DEFAULTS["n_controls"],
    control_interval_s: float = COMPARISON_DEFAULTS["control_interval_s"],
    converge_seconds: float = COMPARISON_DEFAULTS["converge_seconds"],
    drain_seconds: float = COMPARISON_DEFAULTS["drain_seconds"],
) -> ComparisonResult:
    """Run the paper's testbed experiment for one protocol/channel cell.

    The paper sends one control packet per minute for hours; we compress the
    schedule (default one per 15 s simulated, ``n_controls`` packets), which
    preserves per-packet behaviour because requests don't overlap.
    """
    net = _network_for(variant, zigbee_channel, seed)
    net.converge(max_seconds=converge_seconds, target=0.97)
    settle = net.converge_settle_seconds()
    if settle > 0:
        # e.g. RPL's DAOs deserve one extra beat after coverage looks done.
        net.run(settle)
    net.metrics.mark()
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(
            destination, payload={"index": index}
        ),
        destinations=net.non_sink_nodes(),
        interval=round(control_interval_s * SECOND),
        count=n_controls,
        rng_name=f"controls-{variant}-{zigbee_channel}-{seed}",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * control_interval_s + drain_seconds)
    metrics = net.control_metrics
    return ComparisonResult(
        variant=variant,
        zigbee_channel=zigbee_channel,
        seed=seed,
        n_controls=len(metrics),
        pdr=metrics.pdr(),
        pdr_by_hop=metrics.pdr_by_hop(),
        latency_by_hop=metrics.latency_by_hop(),
        mean_latency=metrics.mean_latency(),
        tx_per_control=net.metrics.tx_per_control_packet(len(metrics)),
        duty_cycle=net.metrics.mean_duty_cycle(),
        athx_samples=metrics.athx_samples(),
        control_metrics=metrics,
        events_executed=net.sim.events_executed,
    )
