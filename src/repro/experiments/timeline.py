"""Per-packet forwarding timelines from tracer records.

Enable tracing on a network, run some control traffic, and render what
happened to each packet — which relays anycast it, where it backtracked,
when it was delivered. The observability tool you reach for when a delivery
looks wrong.

Usage::

    net = repro.build_network(...)
    net.sim.tracer.enable(categories={"tele.forward", "tele.backtrack",
                                      "tele.deliver"})
    net.converge(); record = net.send_control(7); net.run(30)
    print(render_timeline(net.sim.tracer, serial=1))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.trace import TraceRecord, Tracer
from repro.sim.units import to_seconds

#: Tracer categories the forwarding engine emits.
TELE_CATEGORIES = {"tele.forward", "tele.backtrack", "tele.deliver"}


@dataclass
class TimelineEvent:
    """One step in a packet's journey."""

    time_s: float
    node: int
    kind: str  # "forward" | "backtrack" | "deliver"
    detail: str


def packet_timeline(tracer: Tracer, serial: int) -> List[TimelineEvent]:
    """All forwarding events for one control packet serial, time-ordered."""
    events: List[TimelineEvent] = []
    for record in tracer.records:
        if record.category not in TELE_CATEGORIES:
            continue
        if record.data.get("serial") != serial:
            continue
        kind = record.category.split(".", 1)[1]
        if kind == "forward":
            detail = (
                f"expected={record.data.get('expected_relay')} "
                f"len={record.data.get('expected_length')} "
                f"athx={record.data.get('athx')} try={record.data.get('tries')}"
            )
        elif kind == "backtrack":
            detail = f"to={record.data.get('came_from')} dead={record.data.get('dead')}"
        else:
            detail = (
                f"athx={record.data.get('athx')} "
                f"{'via helper unicast' if record.data.get('via_unicast') else 'via anycast'}"
            )
        events.append(
            TimelineEvent(
                time_s=to_seconds(record.time),
                node=record.node if record.node is not None else -1,
                kind=kind,
                detail=detail,
            )
        )
    events.sort(key=lambda e: e.time_s)
    return events


def render_timeline(tracer: Tracer, serial: int) -> str:
    """Human-readable timeline for one packet."""
    events = packet_timeline(tracer, serial)
    if not events:
        return f"serial {serial}: no trace records (is tracing enabled?)"
    t0 = events[0].time_s
    lines = [f"control packet serial={serial}"]
    for event in events:
        marker = {"forward": "→", "backtrack": "↩", "deliver": "✔"}[event.kind]
        lines.append(
            f"  +{event.time_s - t0:7.3f}s {marker} node {event.node:<3d} "
            f"{event.kind:<9s} {event.detail}"
        )
    return "\n".join(lines)


def serials_seen(tracer: Tracer) -> List[int]:
    """Every control-packet serial with at least one trace record."""
    out = []
    seen = set()
    for record in tracer.records:
        if record.category in TELE_CATEGORIES:
            serial = record.data.get("serial")
            if serial is not None and serial not in seen:
                seen.add(serial)
                out.append(serial)
    return out


def summarize(tracer: Tracer) -> Dict[int, Dict[str, int]]:
    """Per-serial event counts: forwards / backtracks / deliveries."""
    counts: Dict[int, Dict[str, int]] = {}
    for record in tracer.records:
        if record.category not in TELE_CATEGORIES:
            continue
        serial = record.data.get("serial")
        if serial is None:
            continue
        kind = record.category.split(".", 1)[1]
        counts.setdefault(serial, {"forward": 0, "backtrack": 0, "deliver": 0})
        counts[serial][kind] += 1
    return counts
