"""City-scale experiment cells: thousands of nodes on the spatial channel.

The paper's evaluation tops out at 225 nodes; these cells run the same
converge-then-control workload on 2k–10k-node generated deployments
(:func:`repro.topology.forest`, ``city_blocks``, ``clustered_field``) with
the grid-hash spatial index enabled — the workload the index exists for.
The profile mirrors :func:`repro.experiments.sweep.network_size_point`
(always-on radios, no collection traffic, no fading): protocol cost, not
LPL polling, is what should scale.

Determinism token: the tracer stays **off** at this scale (it accumulates
records in memory), so :func:`scale_state_digest` reduces the run to the
kernel clock/event counters, every node's radio/MAC counters, and the
control delivery timeline — any divergence in event order or RNG
consumption shifts those within a handful of events. The 2k/10k corpus in
``tests/golden/scale_digests.json`` pins these digests.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, Optional

from repro.experiments.harness import Network, NetworkConfig
from repro.sim.units import SECOND
from repro.topology import Deployment, city_blocks, clustered_field, forest
from repro.workloads.control import ControlSchedule

#: Default schedule for one scale cell. Converge is generous (deep trees at
#: 10k nodes need many Trickle rounds); control is a short round so the
#: whole cell stays minutes of wall clock on one machine.
SCALE_DEFAULTS: Dict[str, Any] = {
    "n_controls": 5,
    "control_interval_s": 10.0,
    "converge_seconds": 240.0,
    "drain_seconds": 30.0,
}

#: Generator names accepted by :func:`scale_deployment`.
SCALE_TOPOLOGIES = ("forest", "city-blocks", "clustered")


def scale_deployment(topo: str, size: int, seed: int) -> Deployment:
    """Build a ~``size``-node deployment for one scale cell.

    ``city-blocks`` and ``clustered`` quantise to whole blocks/clusters, so
    the actual node count (``deployment.size``) can differ slightly from
    the request; results report the actual count.
    """
    if topo == "forest":
        return forest(n=size, seed=seed)
    if topo == "city-blocks":
        per_block = 12
        blocks = max(1, round((size / per_block) ** 0.5))
        return city_blocks(
            blocks_x=blocks, blocks_y=blocks, nodes_per_block=per_block, seed=seed
        )
    if topo == "clustered":
        per_cluster = 25
        return clustered_field(
            clusters=max(1, size // per_cluster),
            nodes_per_cluster=per_cluster,
            seed=seed,
        )
    raise ValueError(f"unknown scale topology {topo!r}; choose from {SCALE_TOPOLOGIES}")


def scale_state_digest(net: Network) -> str:
    """Tracer-free determinism token for a finished scale run."""
    sim = net.sim
    state = {
        "now": sim.now,
        "events": sim.events_executed,
        "nodes": [
            [
                node_id,
                stack.radio.tx_count,
                stack.radio.on_time(),
                stack.mac.trains_sent,
                stack.mac.copies_sent,
                stack.mac.acks_sent,
                stack.mac.frames_delivered,
            ]
            for node_id, stack in sorted(net.stacks.items())
        ],
        "controls": [
            [r.index, r.destination, r.sent_at, r.delivered_at, r.acked_at, r.athx]
            for r in net.control_metrics.records
        ],
    }
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scale_config(
    topo: str = "forest",
    size: int = 2000,
    seed: int = 1,
    spatial_index: object = True,
) -> NetworkConfig:
    """The :class:`NetworkConfig` one scale cell runs on (fingerprintable)."""
    return NetworkConfig(
        topology=scale_deployment(topo, size, seed),
        protocol="tele",
        seed=seed,
        always_on=True,
        collection_ipi=None,
        fading_sigma_db=0.0,
        spatial_index=spatial_index,
    )


def scale_point(
    topo: str = "forest",
    size: int = 2000,
    seed: int = 1,
    n_controls: int = SCALE_DEFAULTS["n_controls"],
    control_interval_s: float = SCALE_DEFAULTS["control_interval_s"],
    converge_seconds: float = SCALE_DEFAULTS["converge_seconds"],
    drain_seconds: float = SCALE_DEFAULTS["drain_seconds"],
    spatial_index: object = True,
    config: Optional[NetworkConfig] = None,
) -> Dict[str, Any]:
    """Run one converge+control scale cell and return its JSON-ready result.

    ``events_per_sec`` (kernel events dispatched per wall second, whole
    cell including network construction) is the number the
    ``BENCH_scale.json`` canary tracks.
    """
    if config is None:
        config = scale_config(topo, size, seed, spatial_index=spatial_index)
    started = time.perf_counter()
    net = Network(config)
    converged = net.converge(max_seconds=converge_seconds, target=0.95)
    net.metrics.mark()
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(
            destination, payload={"index": index}
        ),
        destinations=net.non_sink_nodes(),
        interval=round(control_interval_s * SECOND),
        count=n_controls,
        rng_name=f"scale-controls-{topo}-{size}-{seed}",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * control_interval_s + drain_seconds)
    wall_s = time.perf_counter() - started
    metrics = net.control_metrics
    return {
        "topology": topo,
        "size": net.deployment.size,
        "seed": seed,
        "spatial_index": config.spatial_index is not None,
        "converged": bool(converged),
        "coded_fraction": net.coded_fraction(),
        "n_controls": len(metrics),
        "pdr": metrics.pdr(),
        "mean_latency_s": metrics.mean_latency(),
        "events_executed": net.sim.events_executed,
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(net.sim.events_executed / wall_s, 1) if wall_s > 0 else 0.0,
        "state_digest": scale_state_digest(net),
    }
