"""Path-code construction statistics: Figure 6 and Table II analyses."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import TeleAdjusting
from repro.experiments.harness import Network, NetworkConfig
from repro.protocols import TeleProtocolAdapter


def code_construction_run(
    topology: str = "tight-grid",
    seed: int = 0,
    max_seconds: float = 400.0,
    target: float = 0.99,
) -> Network:
    """Build and converge a TeleAdjusting network for code statistics.

    Matches the paper's Figure 6 setup: code construction rides on CTP with
    512 ms beacon rounds. Radios run always-on here (the TOSSIM simulations
    measure the construction process, not duty cycling), which keeps 225-node
    fields tractable.
    """
    net = Network(
        NetworkConfig(
            topology=topology,
            protocol="tele",
            seed=seed,
            always_on=True,
            collection_ipi=None,
            # TOSSIM's per-link gains are static: the paper's Figure 6 runs
            # see CPM noise but no fading. Matching that keeps the deep
            # Sparse-linear chains from churning mid-construction.
            fading_sigma_db=0.0,
        )
    )
    net.converge(max_seconds=max_seconds, target=target)
    return net


def _tele(net: Network, node_id: int) -> TeleAdjusting:
    adapter = net.protocols[node_id]
    assert isinstance(adapter, TeleProtocolAdapter)
    return adapter.engine


def code_length_by_hop(net: Network) -> Dict[int, List[int]]:
    """Figure 6(a) / Table II: valid path-code length grouped by CTP hop count."""
    grouped: Dict[int, List[int]] = defaultdict(list)
    for node_id in net.stacks:
        tele = _tele(net, node_id)
        if tele.allocation.code is None:
            continue
        hop = net.stacks[node_id].routing.hop_count
        grouped[hop].append(tele.allocation.code.length)
    return dict(sorted(grouped.items()))


def children_by_hop(net: Network) -> Dict[int, List[int]]:
    """Figure 6(b): number of allocated children per node, by hop count."""
    grouped: Dict[int, List[int]] = defaultdict(list)
    for node_id in net.stacks:
        tele = _tele(net, node_id)
        hop = net.stacks[node_id].routing.hop_count
        grouped[hop].append(len(tele.allocation.children))
    return dict(sorted(grouped.items()))


def convergence_beacons(net: Network) -> List[float]:
    """Figure 6(c): beacon rounds from the routing-found trigger to a code."""
    out: List[float] = []
    for node_id in net.stacks:
        if node_id == net.sink:
            continue
        beacons = _tele(net, node_id).allocation.beacons_to_converge()
        if beacons is not None:
            out.append(beacons)
    return out


def reverse_hop_counts(net: Network) -> List[Tuple[int, int]]:
    """Figure 6(d): (CTP hop count, reverse/downward hop count) per node.

    The reverse hop count is the depth in the *allocation* tree — the chain
    of parents that handed out positions, i.e. the encoded path — which can
    differ from the current CTP parent chain because codes are not re-issued
    on every routing change.
    """
    samples: List[Tuple[int, int]] = []
    for node_id in net.stacks:
        if node_id == net.sink:
            continue
        depth = _allocation_depth(net, node_id)
        if depth is None:
            continue
        ctp_hop = net.stacks[node_id].routing.hop_count
        samples.append((ctp_hop, depth))
    return samples


def _allocation_depth(net: Network, node_id: int, limit: int = 128) -> Optional[int]:
    depth = 0
    current = node_id
    seen = set()
    while current != net.sink:
        if current in seen or depth > limit:
            return None
        seen.add(current)
        allocation = _tele(net, current).allocation
        parent = allocation._position_parent
        if parent is None:
            return None
        current = parent
        depth += 1
    return depth


def mean_reverse_ratio(samples: List[Tuple[int, int]]) -> Optional[float]:
    """The paper's headline: avg reverse hops / avg CTP hops ≈ 1.08."""
    ctp = [h for h, _ in samples if h > 0]
    reverse = [r for h, r in samples if h > 0]
    if not ctp:
        return None
    return (sum(reverse) / len(reverse)) / (sum(ctp) / len(ctp))
