"""Chaos runs: protocol behaviour under injected faults.

One :func:`run_chaos` call is one cell of a chaos grid: a comparison-style
network (indoor testbed), converged cleanly, then hit with a preset
:func:`repro.faults.chaos_plan` scenario while the control schedule runs.
The result is a JSON-ready dict: delivery/latency under churn plus the
:func:`repro.faults.recovery_report` countermeasure counters and a trace
digest (the determinism regression token — same seed + plan ⇒ identical
dict, bit for bit).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.experiments.comparison import config_for
from repro.experiments.harness import _TOPOLOGIES, Network, NetworkConfig
from repro.faults import chaos_plan, recovery_report
from repro.sim.units import SECOND
from repro.workloads.control import ControlSchedule

#: Default schedule for one chaos cell, shared with
#: :func:`repro.runner.taskspec.chaos_spec` (same contract as
#: ``COMPARISON_DEFAULTS``: specs built with defaults hash identically to
#: calls made with defaults).
CHAOS_DEFAULTS = {
    "n_controls": 20,
    "control_interval_s": 15.0,
    "converge_seconds": 240.0,
    "drain_seconds": 90.0,
}

#: Trace categories recorded during a chaos run (inputs to the digest).
TRACE_CATEGORIES = {
    "tele.backtrack",
    "tele.deliver",
    "tele.snoop-takeover",
    "faults",
}


def chaos_config(
    variant: str,
    scenario: str,
    intensity: float,
    seed: int,
    zigbee_channel: int = 26,
    n_controls: int = CHAOS_DEFAULTS["n_controls"],
    control_interval_s: float = CHAOS_DEFAULTS["control_interval_s"],
    spatial_index: object = None,
    radio_profile: object = None,
) -> NetworkConfig:
    """The :class:`NetworkConfig` one chaos cell runs on.

    The fault plan is built deterministically from (scenario, intensity,
    seed) against the comparison topology and attached with
    ``auto_arm=False`` — :func:`run_chaos` arms it after convergence, so
    the faults hit an operating network, not the bootstrap. Exposed
    separately so the runner's cache key fingerprints the derived config
    *including the plan*.
    """
    config = config_for(variant, zigbee_channel, seed)
    if isinstance(config.topology, str):
        deployment = _TOPOLOGIES[config.topology](seed)
    else:
        deployment = config.topology
    # Spread the faults over the bulk of the control phase, leaving the tail
    # for recovery so "time to first successful control" is measurable.
    window_s = max(n_controls * control_interval_s * 0.6, 30.0)
    plan = chaos_plan(
        scenario,
        intensity,
        n_nodes=deployment.size,
        sink=deployment.sink,
        seed=seed,
        start_s=2.0,
        window_s=round(window_s, 3),
        auto_arm=False,
    )
    config.faults = plan
    config.spatial_index = spatial_index
    # None means the default profile and is omitted from the fingerprint;
    # the differential suite passes the default's name explicitly to prove
    # the explicit spelling is behaviour-identical.
    config.radio_profile = radio_profile
    return config


def chaos_grid_specs(
    variants: Sequence[str],
    intensities: Sequence[float],
    seeds: Sequence[int],
    scenario: str = "mixed",
    zigbee_channel: int = 26,
    **schedule: Any,
) -> List["TaskSpec"]:
    """The chaos grid as runner task specs: variant × intensity × seed.

    One canonical grid builder shared by the CLI and tests, so the cell
    ordering (and with it the grid's journal fingerprint) is identical
    everywhere a chaos grid is launched.
    """
    from repro.runner import chaos_spec

    return [
        chaos_spec(
            variant,
            scenario=scenario,
            intensity=intensity,
            seed=seed,
            zigbee_channel=zigbee_channel,
            **schedule,
        )
        for variant in variants
        for intensity in intensities
        for seed in seeds
    ]


def run_chaos(
    variant: str,
    scenario: str = "mixed",
    intensity: float = 0.5,
    seed: int = 0,
    zigbee_channel: int = 26,
    n_controls: int = CHAOS_DEFAULTS["n_controls"],
    control_interval_s: float = CHAOS_DEFAULTS["control_interval_s"],
    converge_seconds: float = CHAOS_DEFAULTS["converge_seconds"],
    drain_seconds: float = CHAOS_DEFAULTS["drain_seconds"],
    spatial_index: object = None,
    radio_profile: object = None,
) -> Dict[str, Any]:
    """Run one chaos cell and return its JSON-ready result dict."""
    config = chaos_config(
        variant,
        scenario,
        intensity,
        seed,
        zigbee_channel,
        n_controls=n_controls,
        control_interval_s=control_interval_s,
        spatial_index=spatial_index,
        radio_profile=radio_profile,
    )
    net = Network(config)
    net.sim.tracer.enable(TRACE_CATEGORIES)
    converged = net.converge(max_seconds=converge_seconds, target=0.97)
    settle = net.converge_settle_seconds()
    if settle > 0:
        net.run(settle)
    net.metrics.mark()
    if net.fault_injector is not None:
        net.fault_injector.arm()
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(
            destination, payload={"index": index}
        ),
        destinations=net.non_sink_nodes(),
        interval=round(control_interval_s * SECOND),
        count=n_controls,
        rng_name=f"chaos-controls-{variant}-{zigbee_channel}-{seed}",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * control_interval_s + drain_seconds)
    metrics = net.control_metrics
    return {
        "variant": variant,
        "scenario": scenario,
        "intensity": intensity,
        "seed": seed,
        "zigbee_channel": zigbee_channel,
        "converged": bool(converged),
        "n_controls": len(metrics),
        "pdr": metrics.pdr(),
        "mean_latency_s": metrics.mean_latency(),
        "recovery": recovery_report(net),
        "trace_digest": net.sim.tracer.digest(),
        "events_executed": net.sim.events_executed,
    }
