"""TeleAdjusting reproduction: path coding and opportunistic forwarding for WSN remote control.

This package reproduces the system described in "TeleAdjusting: Using Path
Coding and Opportunistic Forwarding for Remote Control in WSNs" (ICDCS 2015),
including every substrate the paper depends on: a discrete-event simulation
kernel (``repro.sim``), a CC2420-style radio and channel model
(``repro.radio``), a duty-cycled low-power-listening MAC (``repro.mac``),
CTP with Trickle beaconing (``repro.net``), the TeleAdjusting protocol itself
(``repro.core``), and the Drip / RPL baselines (``repro.baselines``).

Quickstart::

    from repro import build_network, TeleAdjustingStack
    net = build_network(topology="tight-grid", seed=1)
    net.run_until_converged()
    result = net.remote_control(destination=42, payload=b"set-ipi=600")
    print(result.delivered, result.latency_s, result.tx_count)
"""

from repro.api import (
    NetworkBuilder,
    RemoteControlResult,
    build_network,
    run_experiment,
)
from repro.version import __version__

__all__ = [
    "NetworkBuilder",
    "RemoteControlResult",
    "build_network",
    "run_experiment",
    "__version__",
]
