"""Persisting experiment results as JSON, and loading them back.

Comparison and sweep results serialise to plain dicts so runs can be saved,
diffed across code versions, and re-plotted without re-simulating. The
``*_from_dict`` loaders invert the serialisers exactly (``to_dict →
from_dict`` round-trips are property-tested), which is what lets the
:mod:`repro.runner` cache rehydrate a stored cell into a live
:class:`ComparisonResult` instead of re-running the simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.experiments.comparison import ComparisonResult
from repro.metrics.control import ControlMetrics, ControlRecord


def control_record_to_dict(record: ControlRecord) -> Dict[str, Any]:
    """JSON-ready dict of one control record."""
    return {
        "index": record.index,
        "destination": record.destination,
        "hop_count": record.hop_count,
        "sent_at": record.sent_at,
        "delivered_at": record.delivered_at,
        "acked_at": record.acked_at,
        "athx": record.athx,
        "via_unicast": record.via_unicast,
        "latency_s": record.latency_s,
    }


def comparison_to_dict(result: ComparisonResult) -> Dict[str, Any]:
    """JSON-ready dict of one comparison run (records included)."""
    out: Dict[str, Any] = {
        "variant": result.variant,
        "zigbee_channel": result.zigbee_channel,
        "seed": result.seed,
        "n_controls": result.n_controls,
        "pdr": result.pdr,
        "pdr_by_hop": {str(k): v for k, v in result.pdr_by_hop.items()},
        "latency_by_hop": {str(k): v for k, v in result.latency_by_hop.items()},
        "mean_latency": result.mean_latency,
        "tx_per_control": result.tx_per_control,
        "duty_cycle": result.duty_cycle,
        "athx_samples": [list(sample) for sample in result.athx_samples],
        "events_executed": result.events_executed,
    }
    if result.control_metrics is not None:
        out["records"] = [
            control_record_to_dict(r) for r in result.control_metrics.records
        ]
    return out


def control_record_from_dict(data: Dict[str, Any]) -> ControlRecord:
    """Inverse of :func:`control_record_to_dict`.

    ``latency_s`` in the serialised form is a derived property and is
    ignored on load.
    """
    return ControlRecord(
        index=data["index"],
        destination=data["destination"],
        hop_count=data["hop_count"],
        sent_at=data["sent_at"],
        delivered_at=data.get("delivered_at"),
        acked_at=data.get("acked_at"),
        athx=data.get("athx"),
        via_unicast=data.get("via_unicast", False),
    )


def comparison_from_dict(data: Dict[str, Any]) -> ComparisonResult:
    """Inverse of :func:`comparison_to_dict`.

    Integer-keyed by-hop maps come back from JSON with string keys and are
    restored; per-request records (when present) rehydrate into a live
    :class:`~repro.metrics.control.ControlMetrics`.
    """
    control_metrics = None
    if "records" in data:
        control_metrics = ControlMetrics()
        for record in data["records"]:
            control_metrics.add(control_record_from_dict(record))
    return ComparisonResult(
        variant=data["variant"],
        zigbee_channel=data["zigbee_channel"],
        seed=data["seed"],
        n_controls=data["n_controls"],
        pdr=data["pdr"],
        pdr_by_hop={int(k): v for k, v in data["pdr_by_hop"].items()},
        latency_by_hop={int(k): v for k, v in data["latency_by_hop"].items()},
        mean_latency=data["mean_latency"],
        tx_per_control=data["tx_per_control"],
        duty_cycle=data["duty_cycle"],
        athx_samples=[tuple(sample) for sample in data["athx_samples"]],
        control_metrics=control_metrics,
        events_executed=data.get("events_executed"),
    )


def save_results(
    results: Union[ComparisonResult, List[ComparisonResult]],
    path: Union[str, Path],
) -> Path:
    """Write one or many comparison results to a JSON file."""
    if isinstance(results, ComparisonResult):
        payload: Any = comparison_to_dict(results)
    else:
        payload = [comparison_to_dict(r) for r in results]
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path], rehydrate: bool = False) -> Any:
    """Read back what :func:`save_results` wrote.

    By default returns the plain dicts/lists as stored; with
    ``rehydrate=True`` the payload is converted back into
    :class:`ComparisonResult` object(s) via :func:`comparison_from_dict`.
    """
    payload = json.loads(Path(path).read_text())
    if not rehydrate:
        return payload
    if isinstance(payload, list):
        return [comparison_from_dict(item) for item in payload]
    return comparison_from_dict(payload)
