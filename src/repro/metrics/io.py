"""Persisting experiment results as JSON.

Comparison and sweep results serialise to plain dicts so runs can be saved,
diffed across code versions, and re-plotted without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.experiments.comparison import ComparisonResult
from repro.metrics.control import ControlMetrics, ControlRecord


def control_record_to_dict(record: ControlRecord) -> Dict[str, Any]:
    """JSON-ready dict of one control record."""
    return {
        "index": record.index,
        "destination": record.destination,
        "hop_count": record.hop_count,
        "sent_at": record.sent_at,
        "delivered_at": record.delivered_at,
        "acked_at": record.acked_at,
        "athx": record.athx,
        "via_unicast": record.via_unicast,
        "latency_s": record.latency_s,
    }


def comparison_to_dict(result: ComparisonResult) -> Dict[str, Any]:
    """JSON-ready dict of one comparison run (records included)."""
    out: Dict[str, Any] = {
        "variant": result.variant,
        "zigbee_channel": result.zigbee_channel,
        "seed": result.seed,
        "n_controls": result.n_controls,
        "pdr": result.pdr,
        "pdr_by_hop": {str(k): v for k, v in result.pdr_by_hop.items()},
        "latency_by_hop": {str(k): v for k, v in result.latency_by_hop.items()},
        "mean_latency": result.mean_latency,
        "tx_per_control": result.tx_per_control,
        "duty_cycle": result.duty_cycle,
        "athx_samples": [list(sample) for sample in result.athx_samples],
    }
    if result.control_metrics is not None:
        out["records"] = [
            control_record_to_dict(r) for r in result.control_metrics.records
        ]
    return out


def save_results(
    results: Union[ComparisonResult, List[ComparisonResult]],
    path: Union[str, Path],
) -> Path:
    """Write one or many comparison results to a JSON file."""
    if isinstance(results, ComparisonResult):
        payload: Any = comparison_to_dict(results)
    else:
        payload = [comparison_to_dict(r) for r in results]
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> Any:
    """Read back what :func:`save_results` wrote (plain dicts/lists)."""
    return json.loads(Path(path).read_text())
