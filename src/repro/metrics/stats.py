"""Small summary-statistics helpers used across metrics and benches."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def mean(values: Sequence[float]) -> Optional[float]:
    """Arithmetic mean, or None for an empty sequence."""
    if not values:
        return None
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile ``q`` in [0, 100]; None when empty."""
    if not values:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def summarize(values: Sequence[float]) -> Dict[str, Optional[float]]:
    """Mean / min / max / median / p90 of a sample."""
    return {
        "n": float(len(values)),
        "mean": mean(values),
        "min": min(values) if values else None,
        "max": max(values) if values else None,
        "median": percentile(values, 50.0),
        "p90": percentile(values, 90.0),
    }
