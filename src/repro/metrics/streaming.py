"""Memory-flat windowed metrics for endurance soaks.

A multi-day simulated soak cannot afford per-event (or even per-control)
accumulation: a 24 h run at paper scale emits hundreds of millions of
events and thousands of control records. :class:`StreamingMetrics` keeps
O(nodes) state only — per-radio cumulative-counter snapshots and a handful
of running totals — and converts it once per *window* into one flat dict
that is immediately handed to a writer callback (JSONL checkpointing) and
folded into a running SHA-256. Nothing about a window survives except the
line written and the hash folded, so peak memory is independent of soak
length, yet same-seed runs still produce a verifiable stream digest.

Control records are *drained*: each window boundary the soak harness
removes records old enough to have settled (sent before the previous
boundary — one full window of grace for in-flight acks) from the network's
accumulators and passes them here for aggregation. Duty cycle and charge
come from cumulative ``radio.on_time()`` / ``tx_count`` deltas, so nothing
may call ``NetworkMetrics.mark()`` (which zeroes on-time) mid-soak.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.radio.energy import interval_charge_mc
from repro.radio.profiles import get_radio_profile
from repro.sim.units import to_seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network
    from repro.metrics.control import ControlRecord

#: Adapter summary counters folded into the churn columns when present.
_CHURN_KEYS = ("backtracks", "re_tele_invocations", "code_changes")


class StreamingMetrics:
    """Windowed, incrementally computed soak metrics (O(nodes) state)."""

    def __init__(
        self,
        network: "Network",
        window_s: float,
        writer: Optional[Callable[[Dict[str, Any]], None]] = None,
        average_frame_bytes: int = 40,
    ) -> None:
        self.network = network
        self.window_s = float(window_s)
        self.writer = writer
        # Charge and TX-time pricing follow the network's radio profile.
        self._profile = getattr(network, "radio_profile", None) or get_radio_profile(
            None
        )
        self._airtime = self._profile.packet_airtime(average_frame_bytes)
        self._hash = hashlib.sha256()
        self.windows_emitted = 0
        # Cumulative-counter snapshots, one slot per node id (radios never
        # disappear; dead radios just stop accumulating).
        self._last_on: Dict[int, int] = {}
        self._last_tx: Dict[int, int] = {}
        sim = network.sim
        self._last_tick = sim.now
        self._last_events = sim.events_executed
        self._last_churn: Dict[str, int] = {k: 0 for k in _CHURN_KEYS}
        for node_id, stack in network.stacks.items():
            self._last_on[node_id] = stack.radio.on_time()
            self._last_tx[node_id] = stack.radio.tx_count

    # ------------------------------------------------------------------ hash
    @property
    def stream_digest(self) -> str:
        """SHA-256 over every window line emitted so far (hex)."""
        return self._hash.hexdigest()

    # ---------------------------------------------------------------- window
    def _churn_totals(self) -> Dict[str, int]:
        """Current cumulative churn counters summed over all adapters."""
        totals = {k: 0 for k in _CHURN_KEYS}
        for adapter in self.network.protocols.values():
            summary = adapter.summary()
            for key in _CHURN_KEYS:
                value = summary.get(key)
                if value is not None:
                    totals[key] += value
        return totals

    def close_window(self, drained: List["ControlRecord"]) -> Dict[str, Any]:
        """Aggregate one window and stream it out.

        ``drained`` holds the control records that settled this window (the
        harness removed them from the per-run accumulators — they are gone
        after this call). Returns the flat window dict it wrote.
        """
        network = self.network
        sim = network.sim
        now = sim.now
        interval = now - self._last_tick
        window_start = self._last_tick

        # --- control outcomes (from the drained, settled records) ---
        sent = len(drained)
        delivered = [r for r in drained if r.delivered]
        acked = [r for r in drained if r.acked_at is not None]
        latencies = [r.latency_s for r in delivered if r.latency_s is not None]
        rtts = [r.rtt_s for r in acked if r.rtt_s is not None]
        first_delivery = min(
            (r.delivered_at for r in delivered), default=None
        )

        # --- radio duty / charge (cumulative deltas, O(nodes)) ---
        duty_sum = 0.0
        charge_mc = 0.0
        n_radios = 0
        if interval > 0:
            for node_id, stack in network.stacks.items():
                radio = stack.radio
                on = radio.on_time()
                tx = radio.tx_count
                d_on = max(0, on - self._last_on[node_id])
                d_tx = max(0, tx - self._last_tx[node_id])
                self._last_on[node_id] = on
                self._last_tx[node_id] = tx
                duty_sum += d_on / interval
                charge_mc += interval_charge_mc(
                    d_on,
                    d_tx * self._airtime,
                    interval,
                    radio.tx_power_dbm,
                    profile=self._profile,
                )
                n_radios += 1

        # --- churn deltas ---
        churn_now = self._churn_totals()
        churn_delta = {
            k: churn_now[k] - self._last_churn[k] for k in _CHURN_KEYS
        }
        self._last_churn = churn_now

        # --- endurance counters (cumulative, cheap) ---
        mobility = network.mobility
        battery = network.battery
        injector = network.fault_injector
        reclaimed = 0
        for adapter in network.protocols.values():
            allocation = getattr(adapter, "allocation", None)
            if allocation is not None:
                reclaimed += allocation.positions_reclaimed

        window = {
            "w": self.windows_emitted,
            "t_s": round(to_seconds(now), 6),
            "sent": sent,
            "delivered": len(delivered),
            "acked": len(acked),
            "delivery": (len(delivered) / sent) if sent else None,
            "latency_mean_s": (
                round(sum(latencies) / len(latencies), 6) if latencies else None
            ),
            "latency_max_s": round(max(latencies), 6) if latencies else None,
            "rtt_mean_s": round(sum(rtts) / len(rtts), 6) if rtts else None,
            "first_control_s": (
                round(to_seconds(first_delivery - window_start), 6)
                if first_delivery is not None
                else None
            ),
            "duty_cycle": round(duty_sum / n_radios, 9) if n_radios else None,
            "charge_mc": round(charge_mc, 6),
            "backtracks": churn_delta["backtracks"],
            "re_tele": churn_delta["re_tele_invocations"],
            "code_changes": churn_delta["code_changes"],
            "moves": mobility.moves if mobility is not None else 0,
            "kicks": mobility.kicks if mobility is not None else 0,
            "kicks_suppressed": (
                (mobility.kicks_suppressed if mobility is not None else 0)
                + (injector.parent_kicks_suppressed if injector is not None else 0)
            ),
            "deaths": len(injector.deaths) if injector is not None else 0,
            "alive": battery.alive_count() if battery is not None else None,
            "reclaimed": reclaimed,
            "events": sim.events_executed - self._last_events,
        }
        self._last_tick = now
        self._last_events = sim.events_executed
        self.windows_emitted += 1
        # Canonical line: sorted keys, no NaN — the same bytes every run,
        # which is what makes the stream digest a determinism token.
        line = json.dumps(window, sort_keys=True, allow_nan=False)
        self._hash.update(line.encode("utf-8"))
        self._hash.update(b"\n")
        if self.writer is not None:
            self.writer(window)
        return window
