"""Per-request remote-control outcome records and aggregations."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.stats import mean
from repro.sim.units import to_seconds


@dataclass
class ControlRecord:
    """One sink→node remote-control request, as measured."""

    index: int
    destination: int
    #: CTP hop count of the destination when the request was issued.
    hop_count: int
    sent_at: int
    #: Destination-side delivery time (one-way), None if never delivered.
    delivered_at: Optional[int] = None
    #: Sink-side end-to-end acknowledgement time, None if never acked.
    acked_at: Optional[int] = None
    #: Accumulated transmission hop count of the delivered copy (Figure 8).
    athx: Optional[int] = None
    #: Whether delivery happened through the Re-Tele final unicast.
    via_unicast: bool = False

    @property
    def delivered(self) -> bool:
        """True once the destination received the packet."""
        return self.delivered_at is not None

    @property
    def latency_s(self) -> Optional[float]:
        """One-way delivery latency in seconds, or None."""
        if self.delivered_at is None:
            return None
        return to_seconds(self.delivered_at - self.sent_at)

    @property
    def rtt_s(self) -> Optional[float]:
        """Send-to-end-to-end-ack round trip in seconds, or None."""
        if self.acked_at is None:
            return None
        return to_seconds(self.acked_at - self.sent_at)


class ControlMetrics:
    """Collects :class:`ControlRecord` objects and aggregates by hop count."""

    def __init__(self) -> None:
        self.records: List[ControlRecord] = []

    def add(self, record: ControlRecord) -> None:
        """Add one element/record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------ aggregates
    def pdr(self) -> Optional[float]:
        """Overall packet delivery ratio (destination-side deliveries)."""
        if not self.records:
            return None
        return sum(1 for r in self.records if r.delivered) / len(self.records)

    def pdr_by_hop(self) -> Dict[int, float]:
        """Figure 7: delivery ratio grouped by destination hop count."""
        grouped: Dict[int, List[ControlRecord]] = defaultdict(list)
        for record in self.records:
            grouped[record.hop_count].append(record)
        return {
            hop: sum(1 for r in records if r.delivered) / len(records)
            for hop, records in sorted(grouped.items())
        }

    def latency_by_hop(self) -> Dict[int, float]:
        """Figure 10: mean one-way delivery latency (s) by hop count."""
        grouped: Dict[int, List[float]] = defaultdict(list)
        for record in self.records:
            latency = record.latency_s
            if latency is not None:
                grouped[record.hop_count].append(latency)
        return {
            hop: mean(latencies) or 0.0 for hop, latencies in sorted(grouped.items())
        }

    def athx_samples(self) -> List[Tuple[int, int]]:
        """Figure 8: (CTP hop count, ATHX) for every delivered packet."""
        return [
            (r.hop_count, r.athx)
            for r in self.records
            if r.delivered and r.athx is not None
        ]

    def mean_athx_ratio(self) -> Optional[float]:
        """Mean ATHX / hop-count over delivered packets (<1 ⇒ shortcuts)."""
        samples = [(h, a) for h, a in self.athx_samples() if h > 0]
        if not samples:
            return None
        return mean([a / h for h, a in samples])

    def mean_latency(self) -> Optional[float]:
        """Mean one-way delivery latency in seconds."""
        latencies = [r.latency_s for r in self.records if r.latency_s is not None]
        return mean([x for x in latencies if x is not None])
