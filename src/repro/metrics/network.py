"""Network-wide counters: duty cycle and transmission counts.

:class:`NetworkMetrics` snapshots per-node state at a *mark* (warm-up
boundary) and reports deltas since, which is how Table III (transmissions per
control packet) and Figure 9 (duty cycle) exclude the construction phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.metrics.stats import mean
from repro.radio.frame import FrameType
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack


class NetworkMetrics:
    """Snapshot/delta counters over a set of node stacks."""

    def __init__(self, sim: Simulator, stacks: Dict[int, "NodeStack"]) -> None:
        self.sim = sim
        self.stacks = stacks
        self._mark_time = 0
        self._mark_tx: Dict[int, Dict[FrameType, int]] = {}
        self.mark()

    def mark(self) -> None:
        """Start a measurement window now (duty cycle and tx counts reset)."""
        self._mark_time = self.sim.now
        self._mark_tx = {
            node_id: dict(stack.tx_by_type) for node_id, stack in self.stacks.items()
        }
        for stack in self.stacks.values():
            stack.radio.reset_on_time()

    # ------------------------------------------------------------ duty cycle
    def duty_cycles(self, include_root: bool = False) -> Dict[int, float]:
        """Per-node radio duty cycle since the mark (root excluded by default:
        the paper's sink is mains-powered and always on)."""
        elapsed = self.sim.now - self._mark_time
        out: Dict[int, float] = {}
        for node_id, stack in self.stacks.items():
            if stack.is_root and not include_root:
                continue
            if elapsed <= 0:
                out[node_id] = 0.0
            else:
                out[node_id] = min(stack.radio.on_time() / elapsed, 1.0)
        return out

    def mean_duty_cycle(self) -> Optional[float]:
        """Figure 9: the network's average radio duty cycle."""
        return mean(list(self.duty_cycles().values()))

    # ------------------------------------------------------- transmissions
    def tx_since_mark(
        self, frame_types: Optional[Iterable[FrameType]] = None
    ) -> int:
        """Total logical transmissions (LPL trains) since the mark."""
        wanted = set(frame_types) if frame_types is not None else None
        total = 0
        for node_id, stack in self.stacks.items():
            base = self._mark_tx.get(node_id, {})
            for frame_type, count in stack.tx_by_type.items():
                if wanted is not None and frame_type not in wanted:
                    continue
                total += count - base.get(frame_type, 0)
        return total

    def control_tx_since_mark(self) -> int:
        """Transmissions attributable to delivering control packets.

        For TeleAdjusting this is CONTROL + FEEDBACK; for RPL, CONTROL; for
        Drip, DISSEMINATION. Counting all three families is safe because an
        experiment runs exactly one control protocol.
        """
        return self.tx_since_mark(
            (FrameType.CONTROL, FrameType.FEEDBACK, FrameType.DISSEMINATION)
        )

    def tx_per_control_packet(self, n_controls: int) -> Optional[float]:
        """Table III: average network-wide transmissions per control packet."""
        if n_controls <= 0:
            return None
        return self.control_tx_since_mark() / n_controls
