"""Measurement: per-request control outcomes and network-wide counters.

- :mod:`repro.metrics.control` — one record per remote-control request
  (delivery, one-way latency, ATHX, end-to-end ack) with grouping by the
  destination's CTP hop count — the axes of Figures 7, 8 and 10.
- :mod:`repro.metrics.network` — radio duty cycle and transmission-count
  snapshots/deltas — Table III and Figure 9.
- :mod:`repro.metrics.streaming` — memory-flat windowed soak metrics
  (one JSONL line per window, running stream digest) for endurance
  runs — see ``docs/soak.md``.
- :mod:`repro.metrics.stats` — tiny summary-statistics helpers.
"""

from repro.metrics.control import ControlMetrics, ControlRecord
from repro.metrics.network import NetworkMetrics
from repro.metrics.stats import mean, percentile, summarize
from repro.metrics.streaming import StreamingMetrics

__all__ = [
    "ControlMetrics",
    "ControlRecord",
    "NetworkMetrics",
    "StreamingMetrics",
    "mean",
    "percentile",
    "summarize",
]
