"""Periodic data-collection traffic (the network's day job).

The paper's testbed runs collection with a 10-minute inter-packet interval
alongside the control traffic; the collection load keeps the link estimator
fed and makes the duty-cycle comparison (Figure 9) realistic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.net.messages import COLLECT_APP_DATA, DataPacket
from repro.sim.simulator import Simulator
from repro.sim.units import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack


class CollectionWorkload:
    """Every non-sink node originates a reading each ``ipi`` (with phase jitter)."""

    def __init__(
        self,
        sim: Simulator,
        stacks: Dict[int, "NodeStack"],
        ipi: int = 10 * MINUTE,
    ) -> None:
        self.sim = sim
        self.stacks = stacks
        self.ipi = ipi
        self.generated = 0
        self.delivered: List[DataPacket] = []
        self._started = False

    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        rng = self.sim.rng("collection-phase")
        for node_id, stack in self.stacks.items():
            if stack.is_root:
                stack.forwarding.collect_handlers[COLLECT_APP_DATA] = (
                    self.delivered.append
                )
                continue
            self.sim.schedule(rng.randrange(self.ipi), self._generate, node_id)

    def _generate(self, node_id: int) -> None:
        self.sim.schedule(self.ipi, self._generate, node_id)
        stack = self.stacks[node_id]
        if stack.routing.has_route:
            stack.forwarding.send(COLLECT_APP_DATA, {"reading": self.sim.now_seconds})
            self.generated += 1

    @property
    def delivery_ratio(self) -> Optional[float]:
        """Delivered / generated, or None before any traffic."""
        if self.generated == 0:
            return None
        return len(self.delivered) / self.generated
