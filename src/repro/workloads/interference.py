"""Bursty 802.11-like interference source.

The paper evaluates on ZigBee channel 19 — overlapped by 2.4 GHz WiFi — and
channel 26, which sits above WiFi channel 11 and is nearly clean. We model
one WiFi access point / client pair as a point source alternating between
idle and busy (frame-burst) periods with exponential durations. While busy it
raises in-band energy at every sensor node according to the same log-distance
propagation the motes use, scaled by a per-ZigBee-channel coupling factor
(0 dB on ch.19, strongly attenuated on ch.26).

The source plugs into :class:`repro.radio.channel.Channel` as an interferer:
it degrades SINR of in-flight receptions and trips CCA, which both corrupts
packets and extends LPL wake-ups — the two effects behind the paper's
Figure 7(b)/9/10 channel-19 results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.radio.propagation import LogDistancePathLoss
from repro.sim.simulator import Simulator
from repro.sim.units import MILLISECOND

Position = Tuple[float, float]


@dataclass
class WifiParams:
    """Interferer intensity and placement."""

    position: Position = (15.0, 20.0)
    tx_power_dbm: float = 15.0
    #: Mean busy (frame burst) duration.
    busy_mean: int = 4 * MILLISECOND
    #: Mean idle gap between bursts.
    idle_mean: int = 40 * MILLISECOND
    #: Extra attenuation from channel separation: ~0 dB when the ZigBee
    #: channel overlaps the WiFi channel (ch.19), large when it does not.
    coupling_db: float = 0.0

    @classmethod
    def zigbee_channel(cls, channel: int, **overrides: object) -> "WifiParams":
        """Preset for the paper's two channels: 19 (overlapped) and 26 (clean)."""
        if channel == 19:
            coupling = 0.0
        elif channel == 26:
            coupling = -60.0  # effectively out of band
        else:
            # Rough per-channel offset: 5 MHz per ZigBee channel, WiFi ~22 MHz.
            coupling = -max(0, abs(channel - 19)) * 8.0
        params = cls(coupling_db=coupling)
        for key, value in overrides.items():
            setattr(params, key, value)
        return params


class WifiInterferer:
    """A point interference source with exponential on/off bursts."""

    def __init__(
        self,
        sim: Simulator,
        node_positions: Sequence[Position],
        propagation: LogDistancePathLoss,
        params: Optional[WifiParams] = None,
        name: str = "wifi",
    ) -> None:
        self.sim = sim
        self.params = params or WifiParams()
        self._rng = sim.rng(f"interferer-{name}")
        self.active = False
        self.busy_time = 0
        self._activated_at = 0
        # Static received power at each node while the source is busy.
        self._power_at: Dict[int, float] = {}
        for node_id, position in enumerate(node_positions):
            # Use the deterministic part of the path loss (no per-link
            # shadowing: the interferer is not in the mote gain matrix).
            import math

            distance = math.dist(self.params.position, position)
            loss = propagation.path_loss_db(distance)
            self._power_at[node_id] = (
                self.params.tx_power_dbm - loss + self.params.coupling_db
            )
        self._started = False

    # ------------------------------------------------------------------ state
    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self._draw(self.params.idle_mean), self._go_busy)

    def _draw(self, mean: int) -> int:
        return max(1, round(self._rng.expovariate(1.0 / mean)))

    def _go_busy(self) -> None:
        self.active = True
        self._activated_at = self.sim.now
        self.sim.schedule(self._draw(self.params.busy_mean), self._go_idle)

    def _go_idle(self) -> None:
        self.active = False
        self.busy_time += self.sim.now - self._activated_at
        self.sim.schedule(self._draw(self.params.idle_mean), self._go_busy)

    # ------------------------------------------- Channel interferer protocol
    def interference_dbm_at(self, node_id: int) -> Optional[float]:
        """Current in-band power at a node (dBm), or None when idle."""
        if not self.active:
            return None
        power = self._power_at.get(node_id)
        if power is None or power < -110.0:
            return None
        return power
