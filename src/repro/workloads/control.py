"""Sink-side control-packet schedule.

The paper's experiments: "Sink node randomly selects a destination, and
sends a control packet to it every one minute." This helper drives any of
the three protocol front-ends through a uniform callable.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.sim.simulator import Simulator
from repro.sim.units import MINUTE


class ControlSchedule:
    """Fires ``send(destination, index)`` periodically at random destinations."""

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[int, int], None],
        destinations: Sequence[int],
        interval: int = 1 * MINUTE,
        count: Optional[int] = None,
        rng_name: str = "control-schedule",
    ) -> None:
        if not destinations:
            raise ValueError("need at least one destination")
        self.sim = sim
        self.send = send
        self.destinations = list(destinations)
        self.interval = interval
        self.count = count
        self.sent = 0
        self._rng = sim.rng(rng_name)
        self.history: List[int] = []
        self._started = False

    def start(self, initial_delay: int = 0) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(initial_delay, self._fire)

    def _fire(self) -> None:
        if self.count is not None and self.sent >= self.count:
            return
        destination = self._rng.choice(self.destinations)
        self.history.append(destination)
        self.send(destination, self.sent)
        self.sent += 1
        if self.count is None or self.sent < self.count:
            self.sim.schedule(self.interval, self._fire)
