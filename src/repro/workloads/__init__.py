"""Workloads: WiFi interference, collection traffic, and control schedules.

- :mod:`repro.workloads.interference` — bursty 802.11-like interferer. The
  paper runs the testbed on ZigBee channel 19 (overlapping home WiFi) and
  channel 26 (clean); we reproduce that with a coupling factor per channel.
- :mod:`repro.workloads.collection` — periodic sensed-data traffic with the
  paper's inter-packet interval (10 minutes).
- :mod:`repro.workloads.control` — the sink's control-packet schedule (one
  packet to a random destination per interval).
"""

from repro.workloads.collection import CollectionWorkload
from repro.workloads.control import ControlSchedule
from repro.workloads.interference import WifiInterferer, WifiParams

__all__ = [
    "CollectionWorkload",
    "ControlSchedule",
    "WifiInterferer",
    "WifiParams",
]
