"""TeleAdjusting core: path coding, position allocation, and forwarding.

- :mod:`repro.core.pathcode` — the variable-length binary path code
  (paper §III-B1): a parent's valid code is a strict prefix of every
  child's code.
- :mod:`repro.core.childtable` — the child-node table (paper Table I).
- :mod:`repro.core.neighbortable` — neighbour code table with old-code
  retention and unreachable flags.
- :mod:`repro.core.allocation` — position allocation engine implementing
  Algorithms 1–3 plus space extension and position maintenance.
- :mod:`repro.core.forwarding` — opportunistic prefix-match downward
  forwarding with backtracking and the destination-unreachable
  countermeasure (Re-Tele).
- :mod:`repro.core.controller` — the remote controller's global view.
- :mod:`repro.core.protocol` — per-node glue; :class:`TeleAdjusting`.
- :mod:`repro.core.multicast` — one-to-many delivery via shared code
  prefixes (the extension the paper's introduction claims).
"""

from repro.core.allocation import AllocationEngine, AllocationParams
from repro.core.childtable import ChildEntry, ChildTable
from repro.core.controller import Controller
from repro.core.forwarding import ForwardingParams, TeleForwarding
from repro.core.messages import ControlPacket, FeedbackPacket, TeleBeacon
from repro.core.neighbortable import NeighborCodeTable
from repro.core.pathcode import PathCode
from repro.core.protocol import TeleAdjusting

__all__ = [
    "AllocationEngine",
    "AllocationParams",
    "ChildEntry",
    "ChildTable",
    "Controller",
    "ForwardingParams",
    "TeleForwarding",
    "ControlPacket",
    "FeedbackPacket",
    "TeleBeacon",
    "NeighborCodeTable",
    "PathCode",
    "TeleAdjusting",
]
