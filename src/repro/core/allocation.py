"""Position allocation engine: Algorithms 1–3 of the paper.

Each node runs one :class:`AllocationEngine`. The sink starts with code ``0``
(one valid bit); every other node waits for the CTP "routing found" event,
then obtains a *position* from its parent — via the parent's TeleAdjusting
beacon, a position request, or an allocation acknowledgement — and derives
its path code as ``parent_code + position``. Parents size their bit space
after the child set has been stable for ten beacon rounds (Algorithm 1),
maintain consistency through routing-beacon piggybacks (Algorithm 2 /
§III-B5), and extend the space by one bit when it fills (§III-B6), which
cascades code updates down the subtree (Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.childtable import ChildTable, SpaceExhausted
from repro.core.messages import (
    AllocationAck,
    Confirmation,
    PositionRequest,
    TeleBeacon,
    TeleBeaconEntry,
)
from repro.core.neighbortable import NeighborCodeTable
from repro.core.pathcode import PathCode
from repro.net.messages import RoutingBeacon
from repro.radio.frame import Frame, FrameType
from repro.sim.simulator import Simulator
from repro.sim.units import MILLISECOND, SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack


@dataclass
class AllocationParams:
    """Timing knobs for the allocation process."""

    #: One "round" — the paper uses the wake-up interval (512 ms).
    round_duration: int = 512 * MILLISECOND
    #: Rounds without a new child before Algorithm 1 runs.
    stability_rounds: int = 10
    #: Consecutive TeleAdjusting beacons broadcast after initial allocation.
    initial_beacons: int = 2
    #: Minimum spacing between position requests to the same parent.
    request_interval: int = 2 * SECOND
    #: Retention of superseded own/neighbour codes.
    old_code_ttl: int = 60 * SECOND
    #: Debounce for change-triggered TeleAdjusting beacons (coalesces the
    #: cascade when several children/extensions change at once; each beacon
    #: is a full LPL train, so coalescing is an energy lever).
    beacon_debounce: int = 150 * MILLISECOND
    #: Reclaim a child's position after this long (ticks) with no evidence
    #: of the child being alive; None disables reclamation (the default, so
    #: existing runs fingerprint and behave exactly as before). In endurance
    #: soaks with battery deaths this is what keeps code space from leaking.
    #: Must comfortably exceed CTP's maximum beacon interval (~4 min under
    #: Trickle) or live-but-quiet children get evicted; ≥ 600 s is safe.
    reclaim_child_ttl: Optional[int] = None


class AllocationEngine:
    """Per-node path-code construction and maintenance."""

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        params: Optional[AllocationParams] = None,
        is_sink: bool = False,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.params = params or AllocationParams()
        self.is_sink = is_sink
        self.children = ChildTable()
        self.neighbor_codes = NeighborCodeTable(old_code_ttl=self.params.old_code_ttl)
        self.code: Optional[PathCode] = None
        self.old_code: Optional[PathCode] = None
        self._old_code_expires = 0
        #: Position allocated to *us* by our parent, and the space it lives in.
        self.position: Optional[int] = None
        self.position_space: int = 0
        self._position_parent: Optional[int] = None  # who allocated it
        self._last_request_at = -(10**12)
        self._initial_done = False
        self._last_new_child_at: Optional[int] = None
        self._known_children_count = 0
        #: Parents we have evidence of having run their position allocation
        #: (§III-B4: a child only *requests* once the parent demonstrably
        #: allocated — via its TeleAdjusting beacon, an allocation ack, or a
        #: sibling's beacon carrying a position).
        self._alloc_seen_from: set = set()
        self._beacon_scheduled = False
        self._pending_extension_flag = False
        # The _round_check loop reschedules itself forever; one loop per
        # node. Reboots re-fire on_parent_found, so guard double-starts.
        self._round_loop_running = False
        # --- metrics (Figure 6) ---
        self.triggered_at: Optional[int] = None  # routing-found event time
        self.code_assigned_at: Optional[int] = None  # first code acquisition
        self.code_changes = 0
        self.tele_beacons_sent = 0
        #: Positions freed because the child went silent past the reclaim
        #: TTL (cumulative; survives reboots like the other metrics).
        self.positions_reclaimed = 0
        #: Hooks fired whenever our own code changes (new value or None).
        self.on_code_change: List[Callable[[Optional[PathCode]], None]] = []

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Arm the engine; the sink self-assigns its one-bit code."""
        if self.is_sink:
            self._set_code(PathCode.sink())
            self.triggered_at = self.sim.now
            self._last_new_child_at = self.sim.now
            self._schedule_round_check()
        else:
            self.stack.routing.on_parent_found.append(self._on_routing_found)
            self.stack.routing.on_parent_change.append(self._on_parent_change)

    def _on_routing_found(self) -> None:
        self.triggered_at = self.sim.now
        self._last_new_child_at = self.sim.now
        if not self._round_loop_running:
            self._schedule_round_check()

    def _schedule_round_check(self) -> None:
        self._round_loop_running = True
        self.sim.schedule(self.params.round_duration, self._round_check)

    def reset(self) -> None:
        """Reboot: wipe every code, position, and table — rejoin from scratch.

        Unlike a parent change (which retains the superseded code for a
        grace period), a crash loses RAM: the old code is gone too, so
        in-flight packets carrying it go stale — the churn TeleAdjusting's
        countermeasures must absorb. ``code_changes`` and the convergence
        timestamps are cumulative metrics and survive.
        """
        self.children = ChildTable()
        self.neighbor_codes = NeighborCodeTable(old_code_ttl=self.params.old_code_ttl)
        self.code = None
        self.old_code = None
        self._old_code_expires = 0
        self.position = None
        self.position_space = 0
        self._position_parent = None
        self._last_request_at = -(10**12)
        self._initial_done = False
        self._last_new_child_at = self.sim.now
        self._known_children_count = 0
        self._alloc_seen_from.clear()
        self._pending_extension_flag = False
        for hook in self.on_code_change:
            hook(None)
        if self.is_sink:
            # The sink's one-bit code is a constant of the scheme, not RAM
            # state acquired over the air; it re-self-assigns on boot.
            self._set_code(PathCode.sink())

    # --------------------------------------------------- Algorithm 1: initial
    def _round_check(self) -> None:
        """Periodic: initial allocation once stable; repair a missing code.

        The stability countdown runs *concurrently* at every node from its
        own routing-found event — position allocation does not wait for the
        node's own code (positions are independent of the prefix; codes
        cascade down afterwards). This is what keeps network-wide
        convergence within ~10–20 beacon rounds (paper Figure 6(c)) instead
        of 10 rounds per tree level.
        """
        self._schedule_round_check()
        if self.code is None:
            self._maybe_request_position()
        self._reclaim_stale_children()
        if self._initial_done:
            return
        assert self._last_new_child_at is not None
        # "No further finding of new child node for ten rounds" (§III-B2):
        # the clock restarts only when the routing child set actually grows.
        current = len(self.stack.routing.children)
        if current > self._known_children_count:
            self._known_children_count = current
            self._last_new_child_at = self.sim.now
            return
        stable_for = self.sim.now - self._last_new_child_at
        if stable_for < self.params.stability_rounds * self.params.round_duration:
            return
        self._initial_allocation()

    def _reclaim_stale_children(self) -> None:
        """Free positions of children silent past the reclaim TTL.

        Battery-dead (or long-gone) children never confirm, beacon, or
        route through us again; without reclamation their positions leak
        and the space extends forever under churn. A reclaimed child that
        turns out alive simply requests a fresh position — the same path a
        rebooted node takes. Runs every round; a no-op (one attribute read)
        when the TTL is disabled, so default-config digests are untouched.
        """
        ttl = self.params.reclaim_child_ttl
        if ttl is None or len(self.children) == 0:
            return
        now = self.sim.now
        stale = [
            entry.child
            for entry in self.children.entries()
            if now - max(entry.last_heard, entry.allocated_at) > ttl
        ]
        for child in stale:
            self.children.remove(child)
            self.positions_reclaimed += 1

    def _initial_allocation(self) -> None:
        """Algorithm 1: size the space, allocate, broadcast two beacons."""
        self._initial_done = True
        known_children = list(self.stack.routing.children)
        if not known_children:
            return  # leaf for now; Algorithm 2 handles late arrivals
        self.children.size_space(len(known_children))
        for child in known_children:
            self.children.allocate(child, now=self.sim.now)
        for i in range(self.params.initial_beacons):
            self.sim.schedule(
                i * 60 * MILLISECOND + 1, self._broadcast_tele_beacon, False
            )

    # -------------------------------------------------------------- own code
    def _set_code(self, code: Optional[PathCode]) -> None:
        if code == self.code:
            return
        if self.code is not None:
            self.old_code = self.code
            self._old_code_expires = self.sim.now + self.params.old_code_ttl
            self.code_changes += 1
        self.code = code
        if code is not None and self.code_assigned_at is None:
            self.code_assigned_at = self.sim.now
        for hook in self.on_code_change:
            hook(code)

    def valid_old_code(self) -> Optional[PathCode]:
        """The retained previous code while its grace period lasts."""
        if self.old_code is not None and self.sim.now < self._old_code_expires:
            return self.old_code
        return None

    def _adopt(
        self,
        parent: int,
        position: int,
        space_bits: int,
        parent_code: Optional[PathCode],
    ) -> None:
        """Take an allocated position and derive our code from it.

        The position is stored even when the parent's own code is still
        unknown (codes cascade top-down after positions settle); a later
        beacon carrying the parent's code completes the derivation.
        """
        self.position = position
        self.position_space = space_bits
        self._position_parent = parent
        if parent_code is None:
            self._send_confirmation(parent, position)
            return  # cannot derive a code yet; a later beacon will carry it
        new_code = parent_code.extend(position, space_bits)
        changed = new_code != self.code
        self._set_code(new_code)
        self._send_confirmation(parent, position)
        if changed and len(self.children) > 0:
            # Our prefix changed, so every descendant's code must change too.
            self._schedule_tele_beacon(extension=True)

    # ------------------------------------------------- TeleAdjusting beacons
    def _schedule_tele_beacon(self, extension: bool = False) -> None:
        self._pending_extension_flag = self._pending_extension_flag or extension
        if self._beacon_scheduled:
            return
        self._beacon_scheduled = True
        self.sim.schedule(
            self.params.beacon_debounce, self._broadcast_tele_beacon, None
        )

    def _broadcast_tele_beacon(self, extension: Optional[bool]) -> None:
        """Broadcast our allocations; ``extension=None`` consumes the debounce."""
        if extension is None:
            self._beacon_scheduled = False
            extension = self._pending_extension_flag
            self._pending_extension_flag = False
        beacon = TeleBeacon(
            origin=self.node_id,
            code=self.code,
            space_bits=self.children.space_bits,
            entries=[
                TeleBeaconEntry(e.child, e.position, e.confirmed)
                for e in self.children.entries()
            ],
            extension=extension,
        )
        self.tele_beacons_sent += 1
        self.stack.send_broadcast(FrameType.TELE_BEACON, beacon, length=beacon.length())

    def handle_tele_beacon(self, frame: Frame, rssi: float) -> None:
        """Algorithm 3 (child side) plus neighbour-table maintenance."""
        beacon: TeleBeacon = frame.payload
        if beacon.code is not None:
            self.neighbor_codes.update_code(beacon.origin, beacon.code, self.sim.now)
        self.neighbor_codes.heard_from(beacon.origin, self.sim.now)
        self._alloc_seen_from.add(beacon.origin)
        self._note_child_alive(beacon.origin)
        if beacon.origin != self.stack.routing.parent:
            return
        for entry in beacon.entries:
            if entry.child != self.node_id:
                continue
            if (
                entry.position != self.position
                or beacon.space_bits != self.position_space
                or beacon.extension
                or self.code is None
                or (
                    beacon.code is not None
                    and not beacon.code.is_prefix_of(self.code)
                )
            ):
                self._adopt(
                    beacon.origin, entry.position, beacon.space_bits, beacon.code
                )
            elif not entry.confirmed:
                self._send_confirmation(beacon.origin, entry.position)
            return
        # Not in the allocation set although this is our parent: request.
        self._maybe_request_position(force=True)

    # --------------------------------------------- position request / ack path
    def _maybe_request_position(self, force: bool = False, repair: bool = False) -> None:
        """§III-B4: ask our parent for a position (rate-limited).

        ``repair`` bypasses the have-a-code short-circuit: our code exists but
        was detected inconsistent with the parent's, so a fresh allocation
        acknowledgement is needed to re-derive it.
        """
        if self.is_sink:
            return
        if not repair and self.position is not None:
            # We hold a position; the code arrives with the parent's beacons
            # (or the parent-side repair below) — don't spam requests.
            return
        parent = self.stack.routing.parent
        if parent is None:
            return
        if not repair and parent not in self._alloc_seen_from:
            return  # no evidence yet that the parent has allocated (§III-B4)
        if repair and self.sim.now - self._last_request_at < self.params.request_interval:
            return  # repair requests stay rate-limited even when forced
        if not force and self.sim.now - self._last_request_at < self.params.request_interval:
            return
        self._last_request_at = self.sim.now
        request = PositionRequest(child=self.node_id, parent=parent)
        self.stack.send_unicast(
            parent, FrameType.POSITION_REQUEST, request, length=PositionRequest.LENGTH
        )

    def handle_position_request(self, frame: Frame, rssi: float) -> None:
        """Algorithm 2, ``ID ∉ S`` branch (parent side)."""
        request: PositionRequest = frame.payload
        if request.parent != self.node_id:
            return
        self._allocate_and_ack(request.child)

    def _allocate_and_ack(self, child: int) -> None:
        space_before = self.children.space_bits
        try:
            entry = self.children.allocate(child, now=self.sim.now)
        except SpaceExhausted:
            return
        entry.confirmed = False
        if self.children.space_bits != space_before and space_before != 0:
            # §III-B6: the extension re-encodes every child's suffix; notify.
            self._schedule_tele_beacon(extension=True)
        ack = AllocationAck(
            parent=self.node_id,
            child=child,
            position=entry.position,
            space_bits=self.children.space_bits,
            parent_code=self.code,
        )
        self.stack.send_unicast(
            child, FrameType.ALLOCATION_ACK, ack, length=AllocationAck.LENGTH
        )

    def handle_allocation_ack(self, frame: Frame, rssi: float) -> None:
        """Adopt a position from a parent's allocation ack."""
        ack: AllocationAck = frame.payload
        if ack.child != self.node_id:
            return
        self._alloc_seen_from.add(ack.parent)
        if ack.parent != self.stack.routing.parent:
            return  # stale: we re-parented since the request
        if ack.parent_code is not None:
            self.neighbor_codes.update_code(ack.parent, ack.parent_code, self.sim.now)
        self._adopt(ack.parent, ack.position, ack.space_bits, ack.parent_code)

    def _send_confirmation(self, parent: int, position: int) -> None:
        confirmation = Confirmation(
            child=self.node_id, parent=parent, position=position
        )
        self.stack.send_unicast(
            parent, FrameType.CONFIRMATION, confirmation, length=Confirmation.LENGTH
        )

    def handle_confirmation(self, frame: Frame, rssi: float) -> None:
        """Mark a child's position as confirmed."""
        confirmation: Confirmation = frame.payload
        if confirmation.parent != self.node_id:
            return
        self._note_child_alive(confirmation.child)
        self.children.confirm(confirmation.child, confirmation.position)

    def _note_child_alive(self, origin: int) -> None:
        """Refresh the reclamation clock for a child we just heard."""
        entry = self.children.entry(origin)
        if entry is not None:
            entry.last_heard = self.sim.now

    # ------------------------------------- routing-beacon piggyback (§III-B5)
    def fill_routing_beacon(self, beacon: RoutingBeacon) -> None:
        """Piggyback our position/code on an outgoing beacon."""
        beacon.tele_position = self.position
        if self.code is not None:
            beacon.tele_code = (self.code.value, self.code.length)

    def observe_routing_beacon(self, beacon: RoutingBeacon, rssi: float) -> None:
        """Algorithm 2 (parent side) driven by child routing beacons."""
        origin = beacon.origin
        self.neighbor_codes.heard_from(origin, self.sim.now)
        self._note_child_alive(origin)
        if beacon.tele_code is not None:
            value, length = beacon.tele_code
            self.neighbor_codes.update_code(
                origin, PathCode(value, length), self.sim.now
            )
        if beacon.tele_position is not None and beacon.parent is not None:
            # A sibling (or any node) carrying a position proves its parent
            # has allocated — the §III-B4 trigger for position requests.
            self._alloc_seen_from.add(beacon.parent)
        if beacon.parent == self.node_id:
            if not self._initial_done:
                return  # _round_check tracks growth; allocation covers this child
            claimed = beacon.tele_position
            if origin in self.children:
                if claimed is None:
                    # Post-initial child still positionless: it missed our
                    # TeleAdjusting beacons — repair with a unicast ack.
                    self._allocate_and_ack(origin)
                    return
                if not self.children.confirm(origin, claimed):
                    # Mismatch: deterministically reallocate (Algorithm 2 l.4-6).
                    self.children.reallocate(origin, now=self.sim.now)
                    self._allocate_and_ack(origin)
                    return
                # Position is right — but the child's code may be an orphan
                # (it missed a cascade after our own code changed) or still
                # missing entirely. Verify the derivation and repair with a
                # fresh allocation ack.
                if self.code is not None and self.children.space_bits > 0:
                    derived = self.code.extend(claimed, self.children.space_bits)
                    if beacon.tele_code is None:
                        self._allocate_and_ack(origin)  # child has no code yet
                    else:
                        value, length = beacon.tele_code
                        if PathCode(value, length) != derived:
                            self._allocate_and_ack(origin)
            else:
                self._allocate_and_ack(origin)
        else:
            # The node claims a different parent: free its position with us.
            if origin in self.children:
                self.children.remove(origin)
            # Child side: our own parent's beacon carries its current code; if
            # it is no longer a prefix of ours, our code is an orphan — ask
            # for a fresh allocation (the ack re-derives our code).
            if (
                origin == self.stack.routing.parent
                and beacon.tele_code is not None
                and self.code is not None
            ):
                value, length = beacon.tele_code
                parent_code = PathCode(value, length)
                if not parent_code.is_prefix_of(self.code):
                    self._maybe_request_position(force=True, repair=True)

    # ------------------------------------------------------- parent changes
    def _on_parent_change(self, old: Optional[int], new: Optional[int]) -> None:
        if new == self._position_parent and self.position is not None:
            return  # returned to the parent that allocated our position
        self.position = None
        self.position_space = 0
        self._position_parent = None
        self._set_code(None)
        if new is not None:
            self._maybe_request_position(force=True)

    # ---------------------------------------------------------------- queries
    def current_codes(self) -> List[PathCode]:
        """Our valid codes, newest first (old code while it lives)."""
        codes = []
        if self.code is not None:
            codes.append(self.code)
        old = self.valid_old_code()
        if old is not None:
            codes.append(old)
        return codes

    def beacons_to_converge(self) -> Optional[float]:
        """Rounds (512 ms beacons) from the routing-found trigger to a code."""
        if self.triggered_at is None or self.code_assigned_at is None:
            return None
        return (self.code_assigned_at - self.triggered_at) / self.params.round_duration
