"""The remote controller's global view of the network.

In the paper's architecture (Figure 1) nodes report their path codes to a
remote data centre; the network manager uses that global view to address
control packets and — for the destination-unreachable countermeasure — to
pick a neighbour of the destination "with different path code to the
greatest extent" and a good link (§III-C4: "as a controller of a deployed
sensor network, the local topology information of each node is necessary and
likely known").

Two ways of feeding the view are provided:

- **reported** — nodes periodically send ``COLLECT_CODE_REPORT`` data packets
  up the tree; :meth:`report_code` ingests them. This is the paper's path.
- **oracle snapshot** — :meth:`snapshot` reads codes and neighbourhoods
  straight out of the simulation. Experiments use this for speed; it stands
  in for a fully converged reporting phase and is documented as a
  substitution in DESIGN.md/EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.pathcode import PathCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import TeleAdjusting
    from repro.radio.channel import Channel


class Controller:
    """Global code registry plus helper selection for Re-Tele."""

    #: Minimum clean-channel PRR for a helper's last hop to the destination.
    MIN_HELPER_PRR = 0.7

    def __init__(self, channel: Optional["Channel"] = None) -> None:
        self.channel = channel
        self._codes: Dict[int, PathCode] = {}
        #: Physical neighbourhood (node -> audible neighbours); filled by
        #: :meth:`snapshot` or :meth:`set_neighbors`.
        self._neighbors: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ feed
    def report_code(self, node: int, code: PathCode) -> None:
        """Ingest one code report (paper path: data packets up the tree)."""
        self._codes[node] = code

    def set_neighbors(self, node: int, neighbors: List[int]) -> None:
        """Record a node's physical neighbour list."""
        self._neighbors[node] = list(neighbors)

    def snapshot(self, protocols: Dict[int, "TeleAdjusting"]) -> int:
        """Oracle: read every node's current code and audible neighbourhood.

        Returns the number of nodes with a code.
        """
        count = 0
        for node_id, protocol in protocols.items():
            code = protocol.allocation.code
            if code is not None:
                self._codes[node_id] = code
                count += 1
            if self.channel is not None:
                self._neighbors[node_id] = self.channel.audible_neighbors(node_id)
        return count

    # --------------------------------------------------------------- queries
    def code_of(self, node: int) -> Optional[PathCode]:
        """The neighbour's current code, or None."""
        return self._codes.get(node)

    def known_nodes(self) -> List[int]:
        """All nodes with a registered code."""
        return list(self._codes)

    def decode_path(self, code: PathCode) -> List[Tuple[int, PathCode]]:
        """Reconstruct the relay sequence implicitly encoded in ``code``.

        §III-B1: "all its upstream relaying nodes are implicitly encoded" —
        every strict prefix of a node's code that is itself some node's code
        names one upstream relay. Returns ``[(node, prefix_code), …]`` from
        the sink down to the code's owner, for every prefix the registry can
        resolve (gaps appear when an intermediate node never reported).
        """
        by_code: Dict[PathCode, int] = {c: n for n, c in self._codes.items()}
        path: List[Tuple[int, PathCode]] = []
        for length in range(1, code.length + 1):
            prefix = code.prefix(length)
            node = by_code.get(prefix)
            if node is not None:
                path.append((node, prefix))
        return path

    def pick_helper(
        self, destination: int, avoid_code: PathCode
    ) -> Optional[Tuple[int, PathCode]]:
        """Neighbour of ``destination`` whose code differs the most (§III-C4).

        "Differs the most" = minimal common prefix with ``avoid_code`` (the
        blocked encoded path); ties break toward better last-hop link quality
        when the channel is known, then toward shorter codes (nearer the sink).
        """
        neighbors = self._neighbors.get(destination, [])
        best: Optional[Tuple[int, PathCode]] = None
        best_key: Optional[Tuple[int, float, int]] = None
        for neighbor in neighbors:
            if neighbor == destination:
                continue
            code = self._codes.get(neighbor)
            if code is None:
                continue
            if self.channel is not None:
                prr = self.channel.expected_prr(neighbor, destination)
                if prr < self.MIN_HELPER_PRR:
                    continue
            else:
                prr = 1.0
            shared = code.common_prefix_length(avoid_code)
            key = (shared, -prr, code.length)
            if best_key is None or key < best_key:
                best_key = key
                best = (neighbor, code)
        return best
