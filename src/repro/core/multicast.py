"""One-to-many delivery via shared code prefixes (paper §I, extension).

The paper notes TeleAdjusting "can be easily extended to application
scenarios of one-to-all or one-to-many packet dissemination": a path-code
prefix denotes the whole subtree beneath one node, so a control packet
addressed to a *prefix* can be relayed toward the subtree exactly like a
unicast control packet, and then flooded only *inside* the subtree.

Mechanics:

- The control packet carries ``destination = MULTICAST`` and
  ``destination_code = the subtree prefix``.
- Outside the subtree, the normal prefix-match anycast applies: nodes whose
  code is a prefix of the target haul it closer.
- A node whose code *starts with* the prefix is a subtree member: it
  delivers the payload and rebroadcasts one copy (duplicate-suppressed by
  serial), so the packet sweeps the subtree without touching the rest of
  the network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.core.messages import ControlPacket
from repro.core.pathcode import PathCode
from repro.mac.lpl import AnycastDecision
from repro.radio.frame import Frame, FrameType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.forwarding import TeleForwarding

#: Sentinel node id addressing "every node under the prefix".
MULTICAST: int = 0xFFFE


class MulticastMixinState:
    """Per-node multicast bookkeeping attached to a TeleForwarding engine."""

    def __init__(self) -> None:
        self.delivered_serials: Set[int] = set()
        self.rebroadcast_serials: Set[int] = set()


def is_multicast(control: ControlPacket) -> bool:
    """Is this control packet subtree-addressed?"""
    return control.destination == MULTICAST


def member_of(
    forwarding: "TeleForwarding", prefix: PathCode, include_old: bool = False
) -> bool:
    """Is this node inside the subtree denoted by ``prefix``?

    Group membership is decided by the *current* code only; retained old
    codes keep relaying working across renumbering but must not re-admit a
    node that already left the subtree (``include_old=True`` opts in for
    relay-eligibility checks).
    """
    if include_old:
        codes = forwarding.allocation.current_codes()
    else:
        code = forwarding.allocation.code
        codes = [code] if code is not None else []
    for code in codes:
        if prefix.is_prefix_of(code):
            return True
    return False


def multicast_decision(
    forwarding: "TeleForwarding", control: ControlPacket, rssi: float
) -> Optional[AnycastDecision]:
    """Anycast verdict for a multicast control packet (None = not multicast)."""
    if not is_multicast(control):
        return None
    if member_of(forwarding, control.destination_code):
        return AnycastDecision(True, slot=0)
    # Outside the subtree the normal on-path conditions apply; signalling
    # None here would fall through to unicast logic, but the destination-id
    # checks there do not fire for the sentinel, so replicate condition 2/3.
    my_match = forwarding._my_match(control.destination_code)
    if my_match > control.expected_length:
        return AnycastDecision(True, slot=max(1, 4 - min(my_match - control.expected_length, 3)))
    if control.expected_relay == forwarding.node_id:
        return AnycastDecision(True, slot=5)
    neighbor, length = forwarding.allocation.neighbor_codes.best_on_path(
        control.destination_code,
        forwarding.sim.now,
        min_length=control.expected_length,
        fresh_within=forwarding.params.neighbor_fresh_ttl,
    )
    if neighbor is not None and length > control.expected_length:
        return AnycastDecision(True, slot=6)
    return AnycastDecision.reject()


def handle_multicast(
    forwarding: "TeleForwarding", state: MulticastMixinState, frame: Frame, rssi: float
) -> bool:
    """Process a received multicast control packet. True when consumed."""
    control: ControlPacket = frame.payload
    if not is_multicast(control):
        return False
    prefix = control.destination_code
    if member_of(forwarding, prefix):
        if control.serial not in state.delivered_serials:
            state.delivered_serials.add(control.serial)
            if forwarding.on_apply is not None:
                forwarding.on_apply(control.payload)
            if forwarding.on_delivered is not None:
                forwarding.on_delivered(control, False)
        if control.serial not in state.rebroadcast_serials:
            state.rebroadcast_serials.add(control.serial)
            # Scoped flood: two staggered broadcasts inside the subtree.
            # The random offsets desynchronise members that all received the
            # same copy (a simultaneous rebroadcast storm deafens everyone).
            rng = forwarding.sim.rng(f"mcast-{forwarding.node_id}")
            for _ in range(3):
                forwarding.sim.schedule(
                    rng.randrange(4_000_000),
                    forwarding.stack.send_broadcast,
                    FrameType.CONTROL,
                    control.advanced(None, prefix.length),
                    ControlPacket.LENGTH,
                )
        return True
    if control.expected_length >= prefix.length:
        # The packet already reached the subtree; the copy we heard is its
        # internal flood. Outside nodes drop it instead of echoing it back.
        return True
    # Not a member: relay it toward the subtree like a unicast control.
    return False


def send_multicast(
    forwarding: "TeleForwarding", prefix: PathCode, payload: object = None
) -> ControlPacket:
    """Sink-side: address the subtree under ``prefix``."""
    control = ControlPacket(
        destination=MULTICAST,
        destination_code=prefix,
        expected_relay=None,
        expected_length=0,
        payload=payload,
        origin_time=forwarding.sim.now,
    )
    from repro.core.forwarding import _RelayState

    forwarding._put_state(control.serial, _RelayState(control=control, came_from=None))
    forwarding._forward(control.serial)
    return control
