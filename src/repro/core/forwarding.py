"""Downward control-packet forwarding (paper §III-C).

A relay holding a control packet attaches an *expected relay* — the next hop
on the encoded path — and anycasts the packet. Any awake overhearing node
acknowledges and takes the packet over if it satisfies one of the paper's
three conditions:

1. it *is* the expected relay;
2. its own (or retained old) path code is a prefix of the destination's code
   and longer than the expected relay's valid length — it is on the path and
   strictly closer;
3. one of its neighbour-table codes satisfies condition 2 — it can haul the
   packet toward such a neighbour even though it is off the path itself.

Acknowledgement slots order the competition: the destination acks first,
then on-path nodes by progress, then the expected relay, then condition-3
helpers. After ``max_tries`` unacknowledged trains the relay *backtracks*,
returning the packet upstream with a feedback packet and marking the failed
neighbours unreachable until their next routing beacon (§III-C3). When the
sink itself gives up, the Re-Tele countermeasure (§III-C4) asks the
controller for a neighbour of the destination with a maximally different
path code and routes through it, finishing with a direct unicast.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core import multicast as multicast_ext
from repro.core.allocation import AllocationEngine
from repro.core.messages import ControlPacket, EndToEndAck, FeedbackPacket
from repro.core.pathcode import PathCode
from repro.mac.lpl import AnycastDecision, SendResult
from repro.net.messages import COLLECT_E2E_ACK
from repro.radio.frame import Frame, FrameType
from repro.sim.simulator import Simulator
from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import Controller
    from repro.net.node import NodeStack


@dataclass
class ForwardingParams:
    """Knobs for the forwarding strategy."""

    #: Anycast trains per relay before backtracking. The paper repeats "more
    #: than 5 times"; one of our tries is already a full LPL train (a wake
    #: interval of back-to-back copies), so 3 trains bound the stall while
    #: still covering transient fades.
    max_tries: int = 3
    #: Sink-side end-to-end timeout before declaring failure / trying Re-Tele.
    e2e_timeout: int = 60 * SECOND
    #: Sink watchdog: with no end-to-end ack after this long, start the
    #: forwarding over from the sink (the controller retries until
    #: ``e2e_timeout``). Backtrack-to-sink also waits this way via a short
    #: pause rather than failing outright.
    sink_retry_interval: int = 8 * SECOND
    #: Enable the destination-unreachable countermeasure (Re-Tele).
    re_tele: bool = False
    #: Enable opportunistic forwarding; off = strict encoded-path relaying
    #: (ablation: only the expected relay may acknowledge).
    opportunistic: bool = True
    #: Remember this many recent serials per node.
    state_cache: int = 64
    #: How long a "we already pushed this serial further" verdict stays
    #: binding; after this a relay may handle the serial afresh (so a genuine
    #: backtrack retry is not starved by stale duplicate suppression).
    stale_ttl: int = 10 * SECOND
    #: A node only volunteers on neighbour evidence (condition 3) — or picks a
    #: neighbour-table next hop — heard within this window. Stale entries make
    #: a node grab packets it cannot advance.
    neighbor_fresh_ttl: int = 30 * SECOND
    #: Figure 5(a): a node overhearing a feedback packet that *can* still
    #: make progress toward the destination takes the packet over instead of
    #: letting it backtrack all the way.
    feedback_overhearing: bool = True


@dataclass
class _RelayState:
    control: ControlPacket
    came_from: Optional[int]
    tries: int = 0
    handed_over: bool = False
    #: Highest expected_length this node has transmitted for the serial.
    sent_expected: int = -1
    #: Last time we transmitted (for stale-suppression expiry).
    sent_at: int = 0
    #: The expected_length attached to the copy we *received* (0 when we
    #: originated). Our own next-hop selection anchors here, never on what we
    #: attached ourselves — otherwise retries would walk the requirement past
    #: every reachable candidate.
    base_length: int = 0
    #: True when we positively know the packet progressed beyond us (our
    #: forward was acknowledged, or we overheard a farther copy). False after
    #: a backtrack: the packet is *behind* us again and retries through us
    #: must not be swallowed.
    safe_downstream: bool = False


@dataclass
class PendingControl:
    """Sink-side bookkeeping for one remote-control request."""

    control: ControlPacket
    destination: int
    sent_at: int
    done: Optional[Callable[["PendingControl"], None]] = None
    delivered: bool = False
    acked_at: Optional[int] = None
    re_tele_used: bool = False
    failed: bool = False


class TeleForwarding:
    """Per-node forwarding engine (the sink's instance also originates)."""

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        allocation: AllocationEngine,
        params: Optional[ForwardingParams] = None,
        controller: Optional["Controller"] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.allocation = allocation
        self.params = params or ForwardingParams()
        self.controller = controller
        self.node_id = stack.node_id
        self._states: "OrderedDict[int, _RelayState]" = OrderedDict()
        self._delivered_serials: "OrderedDict[int, int]" = OrderedDict()
        #: frame_id -> serial for anycast copies we won, so a HANDOVER
        #: announce naming someone else can demote us.
        self._won_frames: "OrderedDict[int, int]" = OrderedDict()
        #: Sink side: serial -> PendingControl.
        self.pending: Dict[int, PendingControl] = {}
        #: Destination-side observer: (control, via_unicast) on every delivery.
        self.on_delivered: Optional[Callable[[ControlPacket, bool], None]] = None
        #: Payload applicator at the destination (the actual "adjusting").
        self.on_apply: Optional[Callable[[object], None]] = None
        self.controls_received = 0
        self.controls_forwarded = 0
        self.backtracks = 0
        self.re_tele_invocations = 0
        #: One-to-many extension state (repro.core.multicast).
        self.multicast_state = multicast_ext.MulticastMixinState()

    def reset(self) -> None:
        """Reboot: drop relay/dedup caches (RAM state).

        Sink-side ``pending`` bookkeeping survives — it belongs to the
        controller process behind the sink, not the mote's RAM — and the
        cumulative counters are metrics, not protocol state. A cleared
        ``_delivered_serials`` means a duplicate arriving post-reboot is
        re-applied, exactly as on real wiped hardware.
        """
        self._states.clear()
        self._delivered_serials.clear()
        self._won_frames.clear()
        self.multicast_state = multicast_ext.MulticastMixinState()

    # --------------------------------------------------------------- plumbing
    def _state(self, serial: int) -> Optional[_RelayState]:
        return self._states.get(serial)

    def _put_state(self, serial: int, state: _RelayState) -> None:
        self._states[serial] = state
        while len(self._states) > self.params.state_cache:
            self._states.popitem(last=False)

    def _my_match(self, target: PathCode) -> int:
        """Longest of our valid codes that is a prefix of ``target``, or -1."""
        best = -1
        for code in self.allocation.current_codes():
            if code.is_prefix_of(target) and code.length > best:
                best = code.length
        return best

    def _candidates(
        self, target: PathCode, base_length: int
    ) -> List[Tuple[int, PathCode]]:
        """Known on-path next hops strictly beyond ``base_length`` bits."""
        table = self.allocation.neighbor_codes
        out: List[Tuple[int, PathCode]] = []
        seen: Dict[int, int] = {}
        now = self.sim.now
        for neighbor, code in table.codes(now):
            entry = table.entry(neighbor)
            if entry is not None and now - entry.last_heard > self.params.neighbor_fresh_ttl:
                continue
            if code.is_prefix_of(target) and code.length > base_length:
                if seen.get(neighbor, -1) < code.length:
                    seen[neighbor] = code.length
        # Children: their codes derive from ours even if never overheard.
        my_code = self.allocation.code
        if my_code is not None and self.allocation.children.space_bits > 0:
            space = self.allocation.children.space_bits
            for entry in self.allocation.children.entries():
                code = my_code.extend(entry.position, space)
                if code.is_prefix_of(target) and code.length > base_length:
                    table_entry = table.entry(entry.child)
                    if table_entry is not None and table_entry.is_unreachable(self.sim.now):
                        continue
                    if seen.get(entry.child, -1) < code.length:
                        seen[entry.child] = code.length
        for neighbor, length in seen.items():
            entry = table.entry(neighbor)
            if entry is not None and entry.is_unreachable(self.sim.now):
                continue
            out.append((neighbor, target.prefix(length)))
        return out

    def _pick_expected(
        self, target: PathCode, base_length: int
    ) -> Tuple[Optional[int], int]:
        """The next hop on the encoded path: the shortest candidate code
        strictly beyond ``base_length`` (keeping the eligible-acker set as
        large as possible, per Figure 4(c))."""
        candidates = self._candidates(target, base_length)
        if not candidates:
            return None, base_length + 1
        best = min(candidates, key=lambda item: item[1].length)
        return best[0], best[1].length

    # ------------------------------------------------------------ origination
    def send_control(
        self,
        destination: int,
        destination_code: PathCode,
        payload: object = None,
        done: Optional[Callable[[PendingControl], None]] = None,
    ) -> PendingControl:
        """Sink API: deliver ``payload`` to ``destination`` (§III-A)."""
        control = ControlPacket(
            destination=destination,
            destination_code=destination_code,
            expected_relay=None,
            expected_length=0,
            payload=payload,
            origin_time=self.sim.now,
        )
        pending = PendingControl(
            control=control,
            destination=destination,
            sent_at=self.sim.now,
            done=done,
        )
        self.pending[control.serial] = pending
        self._put_state(
            control.serial, _RelayState(control=control, came_from=None)
        )
        self._forward(control.serial)
        self.sim.schedule(
            self.params.e2e_timeout, self._check_timeout, control.serial
        )
        self.sim.schedule(
            self.params.sink_retry_interval, self._sink_watchdog, control.serial
        )
        return pending

    def _sink_watchdog(self, serial: int) -> None:
        """No end-to-end ack yet: restart forwarding from the sink."""
        pending = self.pending.get(serial)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        remaining = (pending.sent_at + self.params.e2e_timeout) - self.sim.now
        if remaining <= self.params.sink_retry_interval // 2:
            return  # the timeout handler will resolve it
        # The controller keeps receiving code reports; if the destination's
        # code changed since we sent, retry with the fresh address.
        if self.controller is not None and pending.control.final_unicast_to is None:
            fresh = self.controller.code_of(pending.destination)
            if fresh is not None and fresh != pending.control.destination_code:
                pending.control = ControlPacket(
                    destination=pending.destination,
                    destination_code=fresh,
                    expected_relay=None,
                    expected_length=0,
                    payload=pending.control.payload,
                    serial=serial,
                    athx=pending.control.athx,
                    origin_time=pending.control.origin_time,
                )
        self._put_state(
            serial, _RelayState(control=pending.control, came_from=None)
        )
        self._forward(serial)
        self.sim.schedule(self.params.sink_retry_interval, self._sink_watchdog, serial)

    def send_multicast(self, prefix: PathCode, payload: object = None) -> ControlPacket:
        """One-to-many: address every node under ``prefix`` (repro.core.multicast)."""
        return multicast_ext.send_multicast(self, prefix, payload)

    def _check_timeout(self, serial: int) -> None:
        pending = self.pending.get(serial)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        self._sink_give_up(serial)

    # -------------------------------------------------------------- forwarding
    def _forward(self, serial: int) -> None:
        state = self._state(serial)
        if state is None or state.handed_over:
            return
        control = state.control
        target = control.destination_code
        base = max(self._my_match(target), state.base_length)
        expected_relay, expected_length = self._pick_expected(target, base)
        if expected_relay is None and not self.params.opportunistic:
            # Strict mode cannot progress without a known next hop.
            self._backtrack(serial)
            return
        next_control = control.advanced(expected_relay, expected_length)
        state.control = next_control
        state.sent_expected = max(state.sent_expected, expected_length)
        state.sent_at = self.sim.now
        self.controls_forwarded += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                "tele.forward",
                "anycast control packet",
                node=self.node_id,
                serial=serial,
                expected_relay=expected_relay,
                expected_length=expected_length,
                athx=next_control.athx,
                tries=state.tries,
            )
        self.stack.send_anycast(
            FrameType.CONTROL,
            next_control,
            length=ControlPacket.LENGTH,
            done=lambda result: self._forward_done(serial, result),
        )

    def _forward_done(self, serial: int, result: SendResult) -> None:
        state = self._state(serial)
        if state is None or state.handed_over:
            return
        if not result.ok and result.reason == "cancelled":
            # Another relay was overheard carrying this packet at least as
            # far; it owns the delivery now.
            state.handed_over = True
            state.safe_downstream = True
            return
        if result.ok:
            state.handed_over = True
            state.safe_downstream = True
            if result.acker is not None:
                self.allocation.neighbor_codes.heard_from(result.acker, self.sim.now)
            return
        state.tries += 1
        # Nobody acknowledged a full train: whatever next hop we advertised is
        # not answering right now — exclude it so the retry explores another
        # branch instead of hammering the same silent candidate.
        if state.control.expected_relay is not None:
            self.allocation.neighbor_codes.mark_unreachable(
                state.control.expected_relay, self.sim.now
            )
        if state.tries < self.params.max_tries:
            # Back off before retrying: a silent neighbourhood often means a
            # neighbour was deaf inside its own (beacon) train; immediate
            # retries land in the same deafness window.
            backoff = 200_000 + self.sim.rng(f"fwd-retry-{self.node_id}").randrange(
                600_000
            )
            self.sim.schedule(backoff, self._forward, serial)
            return
        self._backtrack(serial)

    # -------------------------------------------------------------- backtrack
    def _backtrack(self, serial: int) -> None:
        state = self._state(serial)
        if state is None:
            return
        control = state.control
        # Mark the neighbours we tried toward as temporarily unreachable.
        dead: List[int] = []
        for neighbor, _code in self._candidates(
            control.destination_code, self._my_match(control.destination_code)
        ):
            self.allocation.neighbor_codes.mark_unreachable(neighbor, self.sim.now)
            dead.append(neighbor)
        if control.expected_relay is not None:
            self.allocation.neighbor_codes.mark_unreachable(
                control.expected_relay, self.sim.now
            )
            if control.expected_relay not in dead:
                dead.append(control.expected_relay)
        self.backtracks += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                "tele.backtrack",
                "relay gives up, returning packet upstream",
                node=self.node_id,
                serial=serial,
                came_from=state.came_from,
                dead=tuple(dead),
            )
        if state.came_from is None:
            # We are the sink: destination-unreachable (§III-C4).
            self._sink_give_up(serial)
            return
        feedback = FeedbackPacket(
            serial=serial,
            destination=control.destination,
            control=control,
            failed_relay=self.node_id,
            dead_neighbors=tuple(dead),
        )
        self.stack.send_unicast(
            state.came_from,
            FrameType.FEEDBACK,
            feedback,
            length=FeedbackPacket.LENGTH,
        )
        state.handed_over = True  # upstream owns it again

    def snoop(self, frame: Frame, rssi: float) -> None:
        """Promiscuous MAC hook: feedback overhearing (paper Fig 5(a)).

        A relay overhearing someone else's feedback packet — i.e. the packet
        is backtracking — takes it over if it is on the destination's path
        beyond the failed relay's anchor and can still name a next hop. This
        shortcuts the full backtrack to the sink.
        """
        if not self.params.feedback_overhearing:
            return
        if frame.type is not FrameType.FEEDBACK or frame.dst == self.node_id:
            return
        feedback: FeedbackPacket = frame.payload
        if feedback.failed_relay == self.node_id:
            return
        control = feedback.control
        my_match = self._my_match(control.destination_code)
        if my_match < 0:
            return  # not on the path; let the normal backtrack proceed
        state = self._state(feedback.serial)
        if state is not None and not state.handed_over:
            return  # already working on it
        for neighbor in feedback.dead_neighbors:
            self.allocation.neighbor_codes.mark_unreachable(neighbor, self.sim.now)
        if not self._candidates(control.destination_code, my_match):
            return  # no way to make progress either
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                "tele.snoop-takeover",
                "overheard feedback; continuing the forwarding ourselves",
                node=self.node_id,
                serial=feedback.serial,
                failed_relay=feedback.failed_relay,
            )
        self._put_state(
            feedback.serial,
            _RelayState(
                control=control,
                came_from=frame.dst,  # the upstream node the feedback targets
                base_length=my_match,
            ),
        )
        self._forward(feedback.serial)

    def handle_feedback(self, frame: Frame, rssi: float) -> None:
        """Process a backtracking feedback packet addressed to us."""
        feedback: FeedbackPacket = frame.payload
        state = self._state(feedback.serial)
        for neighbor in (feedback.failed_relay, *feedback.dead_neighbors):
            self.allocation.neighbor_codes.mark_unreachable(neighbor, self.sim.now)
        if state is None:
            # We never held this packet (e.g. state evicted); recover it from
            # the feedback itself and take ownership as a fresh relay.
            state = _RelayState(
                control=feedback.control, came_from=None
            )
            self._put_state(feedback.serial, state)
        state.handed_over = False
        state.safe_downstream = False
        state.tries = 0
        # Re-anchor at our own position on the path so the retry may pick a
        # different branch than the one that just failed.
        my_match = self._my_match(state.control.destination_code)
        if my_match >= 0:
            state.base_length = my_match
        self._forward(feedback.serial)

    # ----------------------------------------------------- Re-Tele (§III-C4)
    def _sink_give_up(self, serial: int) -> None:
        pending = self.pending.get(serial)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        if (
            self.params.re_tele
            and self.controller is not None
            and not pending.re_tele_used
        ):
            helper = self.controller.pick_helper(
                pending.destination, avoid_code=pending.control.destination_code
            )
            if helper is not None:
                helper_id, helper_code = helper
                pending.re_tele_used = True
                self.re_tele_invocations += 1
                rerouted = ControlPacket(
                    destination=helper_id,
                    destination_code=helper_code,
                    expected_relay=None,
                    expected_length=0,
                    payload=pending.control.payload,
                    serial=serial,
                    athx=pending.control.athx,
                    final_unicast_to=pending.destination,
                    origin_time=pending.control.origin_time,
                )
                pending.control = rerouted
                self._put_state(serial, _RelayState(control=rerouted, came_from=None))
                self._forward(serial)
                self.sim.schedule(
                    self.params.e2e_timeout, self._check_timeout, serial
                )
                return
        if self.sim.now < pending.sent_at + self.params.e2e_timeout:
            return  # the sink watchdog keeps retrying until the deadline
        pending.failed = True
        if pending.done is not None:
            pending.done(pending)

    # ----------------------------------------------------------------- receive
    def anycast_decision(self, frame: Frame, rssi: float) -> AnycastDecision:
        """MAC hook: should we acknowledge this overheard control packet?"""
        if frame.type is not FrameType.CONTROL:
            return AnycastDecision.reject()
        control: ControlPacket = frame.payload
        multicast_verdict = multicast_ext.multicast_decision(self, control, rssi)
        if multicast_verdict is not None:
            return multicast_verdict
        if control.destination == self.node_id:
            return AnycastDecision(True, slot=0)
        if not self.params.opportunistic:
            # Strict encoded-path mode: only the named expected relay helps.
            if control.expected_relay == self.node_id:
                return AnycastDecision(True, slot=1)
            return AnycastDecision.reject()
        state = self._state(control.serial)
        if state is not None and not state.handed_over:
            # We hold (or are transmitting) this very packet and overhear
            # another relay carrying it at least as far: duplicate detected —
            # cede to them (DOF-style suppression). Ties break by node id so
            # two co-winners never both cancel.
            ours = max(state.sent_expected, state.control.expected_length)
            ahead = control.expected_length > ours or (
                control.expected_length == ours and frame.src < self.node_id
            )
            if ahead:
                serial = control.serial
                self.stack.mac.cancel_matching(
                    lambda f: f.type is FrameType.CONTROL
                    and isinstance(f.payload, ControlPacket)
                    and f.payload.serial == serial
                )
                state.handed_over = True
                state.safe_downstream = True
                return AnycastDecision.reject()
        if (
            state is not None
            and state.sent_expected >= control.expected_length
            and self.sim.now - state.sent_at < self.params.stale_ttl
        ):
            if state.safe_downstream:
                # Stale copy from behind us — typically a co-winner that never
                # learned the packet moved on. Accept (a "courtesy ack") so the
                # sender stops its train immediately; handle_control will then
                # drop the duplicate without re-forwarding.
                return AnycastDecision(True, slot=1)
            return AnycastDecision.reject()
        target = control.destination_code
        my_match = self._my_match(target)
        if my_match > control.expected_length:
            progress = my_match - control.expected_length
            return AnycastDecision(True, slot=max(1, 4 - min(progress, 3)))
        if control.expected_relay == self.node_id:
            return AnycastDecision(True, slot=5)
        # Condition 3: a neighbour of ours is strictly beyond the expected relay.
        neighbor, length = self.allocation.neighbor_codes.best_on_path(
            target,
            self.sim.now,
            min_length=control.expected_length,
            fresh_within=self.params.neighbor_fresh_ttl,
        )
        if neighbor is not None and length > control.expected_length:
            return AnycastDecision(True, slot=6)
        return AnycastDecision.reject()

    def handle_handover(self, frame: Frame, rssi: float) -> None:
        """Anycast winner announcement: demote ourselves if we also 'won'."""
        frame_id, winner = frame.payload
        if winner == self.node_id:
            return
        serial = self._won_frames.get(frame_id)
        if serial is None:
            return
        state = self._state(serial)
        if state is None or state.handed_over:
            return
        self.stack.mac.cancel_matching(
            lambda f: f.type is FrameType.CONTROL
            and isinstance(f.payload, ControlPacket)
            and f.payload.serial == serial
        )
        state.handed_over = True
        state.safe_downstream = True

    def handle_control(self, frame: Frame, rssi: float) -> None:
        """We won an anycast (or received the final unicast hop)."""
        control: ControlPacket = frame.payload
        self.controls_received += 1
        if multicast_ext.handle_multicast(self, self.multicast_state, frame, rssi):
            return
        if frame.is_broadcast:
            self._won_frames[frame.frame_id] = control.serial
            while len(self._won_frames) > self.params.state_cache:
                self._won_frames.popitem(last=False)
        is_final_unicast = (
            not frame.is_broadcast and control.final_unicast_to == self.node_id
        )
        if control.destination == self.node_id and control.final_unicast_to is None:
            self._deliver(control, via_unicast=False, from_neighbor=frame.src)
            return
        if is_final_unicast:
            self._deliver(control, via_unicast=True, from_neighbor=frame.src)
            return
        if (
            control.destination == self.node_id
            and control.final_unicast_to is not None
        ):
            # We are the Re-Tele helper: hand over directly (§III-C4).
            self.stack.send_unicast(
                control.final_unicast_to,
                FrameType.CONTROL,
                control.advanced(control.final_unicast_to, control.destination_code.length),
                length=ControlPacket.LENGTH,
            )
            return
        state = self._state(control.serial)
        if (
            state is not None
            and state.sent_expected >= control.expected_length
            and self.sim.now - state.sent_at < self.params.stale_ttl
        ):
            return  # we already pushed this packet further
        self._put_state(
            control.serial,
            _RelayState(
                control=control,
                came_from=frame.src,
                base_length=control.expected_length,
            ),
        )
        self._forward(control.serial)

    # ------------------------------------------------------------- delivery
    def _deliver(
        self, control: ControlPacket, via_unicast: bool, from_neighbor: int
    ) -> None:
        serial = control.serial
        if serial in self._delivered_serials:
            return
        self._delivered_serials[serial] = self.sim.now
        while len(self._delivered_serials) > self.params.state_cache:
            self._delivered_serials.popitem(last=False)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                "tele.deliver",
                "control packet reached its destination",
                node=self.node_id,
                serial=serial,
                via_unicast=via_unicast,
                athx=control.athx,
            )
        if self.on_apply is not None:
            self.on_apply(control.payload)
        if self.on_delivered is not None:
            self.on_delivered(control, via_unicast)
        ack = EndToEndAck(
            serial=serial, destination=self.node_id, received_at=self.sim.now
        )
        if via_unicast:
            # §III-C5: our upward path may be blocked; return the ack through
            # the neighbour that delivered, who forwards it up its own tree.
            from repro.net.messages import DataPacket

            packet = DataPacket(
                origin=self.node_id,
                origin_seqno=serial,
                collect_id=COLLECT_E2E_ACK,
                payload=ack,
            )
            self.stack.send_unicast(
                from_neighbor, FrameType.DATA, packet, length=DataPacket.LENGTH
            )
        else:
            self.stack.forwarding.send(COLLECT_E2E_ACK, ack, origin_seqno=serial)

    def e2e_ack_received(self, ack: EndToEndAck) -> None:
        """Sink side: CTP delivered an end-to-end acknowledgement."""
        pending = self.pending.get(ack.serial)
        if pending is None or pending.acked_at is not None:
            return
        pending.acked_at = self.sim.now
        pending.delivered = True
        if pending.done is not None:
            pending.done(pending)
