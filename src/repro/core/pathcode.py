"""The path code: a variable-length binary string encoding the reverse path.

Every node's code is its parent's code followed by the *position* the parent
allocated to it, written in the parent's current bit-space width (paper
§III-B1, Figure 2). The sink's code is the single bit ``0``. Consequently a
node ``a`` lies on the (encoded) path from the sink to ``d`` exactly when
``a``'s code is a prefix of ``d``'s code, and "closer to the destination"
means "longer matching prefix" — the two predicates the forwarding strategy
is built from.

Codes are immutable and hashable. Internally a code is ``(value, length)``
with the first (sink-side) bit in the most significant position of ``value``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple


class PathCode:
    """An immutable binary path code."""

    __slots__ = ("value", "length")

    def __init__(self, value: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative code length: {length}")
        if value < 0:
            raise ValueError(f"negative code value: {value}")
        if length == 0 and value != 0:
            raise ValueError("empty code must have value 0")
        if length > 0 and value >= (1 << length):
            raise ValueError(f"value {value:#b} does not fit in {length} bits")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:  # immutability
        raise AttributeError("PathCode is immutable")

    # ------------------------------------------------------------ constructors
    @classmethod
    def sink(cls) -> "PathCode":
        """The sink's code: one valid bit, ``0``."""
        return cls(0, 1)

    @classmethod
    def from_bits(cls, bits: str) -> "PathCode":
        """Parse from a string like ``"00101"`` (leading zeros significant)."""
        if bits == "":
            return cls(0, 0)
        if any(b not in "01" for b in bits):
            raise ValueError(f"invalid bit string: {bits!r}")
        return cls(int(bits, 2), len(bits))

    def extend(self, position: int, space_bits: int) -> "PathCode":
        """Child code: this code followed by ``position`` in ``space_bits`` bits.

        ``position`` ranges over ``[0, 2**space_bits)``; the paper reserves
        position 0 patterns implicitly by allocating from 1, but the encoding
        itself supports the full space.
        """
        if space_bits <= 0:
            raise ValueError(f"space must be at least 1 bit, got {space_bits}")
        if not 0 <= position < (1 << space_bits):
            raise ValueError(
                f"position {position} does not fit in {space_bits} bits"
            )
        return PathCode((self.value << space_bits) | position, self.length + space_bits)

    def widen_last(self, old_space: int, new_space: int) -> "PathCode":
        """Re-encode the final ``old_space`` bits into ``new_space`` bits.

        Space extension (paper §III-B6): the parent grows its bit space by one
        bit; previously allocated positions keep their numeric value but are
        now written wider, so every descendant's code shifts. The prefix above
        the last ``old_space`` bits is unchanged.
        """
        if old_space <= 0 or new_space < old_space:
            raise ValueError(f"invalid widening {old_space} -> {new_space}")
        if self.length < old_space:
            raise ValueError("code shorter than the space being widened")
        prefix = self.value >> old_space
        position = self.value & ((1 << old_space) - 1)
        return PathCode(
            (prefix << new_space) | position, self.length - old_space + new_space
        )

    # ----------------------------------------------------------------- queries
    def is_prefix_of(self, other: "PathCode") -> bool:
        """True when this code's valid bits lead ``other``'s (or are equal)."""
        if self.length > other.length:
            return False
        return (other.value >> (other.length - self.length)) == self.value

    def common_prefix_length(self, other: "PathCode") -> int:
        """Number of leading bits the two codes share."""
        n = min(self.length, other.length)
        if n == 0:
            return 0
        a = self.value >> (self.length - n)
        b = other.value >> (other.length - n)
        x = a ^ b
        if x == 0:
            return n
        return n - x.bit_length()

    def prefix(self, n: int) -> "PathCode":
        """The first ``n`` bits as a code."""
        if not 0 <= n <= self.length:
            raise ValueError(f"prefix length {n} out of range 0..{self.length}")
        return PathCode(self.value >> (self.length - n) if n else 0, n)

    def bit(self, i: int) -> int:
        """The ``i``-th bit (0 = sink-side/most significant)."""
        if not 0 <= i < self.length:
            raise IndexError(i)
        return (self.value >> (self.length - 1 - i)) & 1

    def bits(self) -> Iterator[int]:
        """Iterate the code's bits, sink-side first."""
        for i in range(self.length):
            yield self.bit(i)

    # ---------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathCode):
            return NotImplemented
        return self.value == other.value and self.length == other.length

    def __hash__(self) -> int:
        return hash((self.value, self.length))

    def __len__(self) -> int:
        return self.length

    def __str__(self) -> str:
        if self.length == 0:
            return "ε"
        return format(self.value, f"0{self.length}b")

    def __repr__(self) -> str:
        return f"PathCode({str(self)})"


def best_match(
    target: PathCode, candidates: dict
) -> Tuple[Optional[object], int]:
    """Among ``candidates`` (key -> PathCode), the one whose code is the
    longest *prefix* of ``target``. Returns ``(key, prefix_length)`` or
    ``(None, -1)`` when no candidate's code is a prefix of the target.
    """
    best_key: Optional[object] = None
    best_len = -1
    for key, code in candidates.items():
        if code is None:
            continue
        if code.is_prefix_of(target) and code.length > best_len:
            best_key, best_len = key, code.length
    return best_key, best_len
