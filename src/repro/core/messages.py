"""TeleAdjusting message payloads."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.pathcode import PathCode

_serials = itertools.count(1)


def reset_serials() -> None:
    """Restart the control-packet serial counter.

    Serials only need to be unique within one network's lifetime, but the
    counter is process-global — without a reset, two identical runs in the
    same process would stamp different serials into their trace records and
    break bit-identical reproducibility. The experiment harness calls this
    when it builds a fresh network.
    """
    global _serials
    _serials = itertools.count(1)


@dataclass
class TeleBeaconEntry:
    """One ``<child, position, flag>`` row carried in a TeleAdjusting beacon."""

    child: int
    position: int
    confirmed: bool


@dataclass
class TeleBeacon:
    """TeleAdjusting beacon (paper §III-B3): the parent's allocations.

    Carries the sender's own path code and space width so children can derive
    their codes and neighbours can maintain their code tables; ``extension``
    flags a space-extension event children must react to (Algorithm 3 line 7).
    """

    origin: int
    code: Optional[PathCode]
    space_bits: int
    entries: List[TeleBeaconEntry] = field(default_factory=list)
    extension: bool = False

    #: ~8 B header + 4 B per entry, capped by the 127 B CC2420 frame.
    BASE_LENGTH = 24

    def length(self) -> int:
        """On-air length in bytes."""
        return min(self.BASE_LENGTH + 4 * len(self.entries), 120)


@dataclass
class PositionRequest:
    """Child → parent: "allocate me a position" (paper §III-B4)."""

    child: int
    parent: int

    LENGTH = 14


@dataclass
class AllocationAck:
    """Parent → child unicast allocation acknowledgement (paper §III-B4)."""

    parent: int
    child: int
    position: int
    space_bits: int
    parent_code: Optional[PathCode]

    LENGTH = 20


@dataclass
class Confirmation:
    """Child → parent: confirms receipt of an allocated position."""

    child: int
    parent: int
    position: int

    LENGTH = 14


@dataclass
class ControlPacket:
    """The downward remote-control packet (paper §III-C).

    Per the forwarding strategy a relay attaches the *expected relay* and the
    expected relay's valid code length; overhearing nodes compare their own
    (or a neighbour's) prefix match against ``expected_length``.
    """

    destination: int
    destination_code: PathCode
    expected_relay: Optional[int]
    expected_length: int  # valid code length of the expected relay
    payload: object = None
    serial: int = field(default_factory=lambda: next(_serials))
    #: Accumulated transmission hop count (ATHX, Figure 8): how many relay
    #: transmissions this copy has undergone.
    athx: int = 0
    #: When set, the addressed node must hand the packet to ``final_unicast_to``
    #: by direct unicast (the Re-Tele countermeasure, §III-C4).
    final_unicast_to: Optional[int] = None
    origin_time: int = 0

    LENGTH = 36

    def advanced(
        self, expected_relay: Optional[int], expected_length: int
    ) -> "ControlPacket":
        """Copy for the next hop: same serial, bumped ATHX, new expected relay."""
        return ControlPacket(
            destination=self.destination,
            destination_code=self.destination_code,
            expected_relay=expected_relay,
            expected_length=expected_length,
            payload=self.payload,
            serial=self.serial,
            athx=self.athx + 1,
            final_unicast_to=self.final_unicast_to,
            origin_time=self.origin_time,
        )


@dataclass
class FeedbackPacket:
    """Backtracking feedback (paper §III-C3): return the packet upstream."""

    serial: int
    destination: int
    control: ControlPacket
    failed_relay: int  # the node giving up
    #: Neighbours the failed relay found unreachable (so the upstream node
    #: can avoid immediately re-selecting them).
    dead_neighbors: Tuple[int, ...] = ()

    LENGTH = 24


@dataclass
class EndToEndAck:
    """Destination → sink acknowledgement riding on CTP data (§III-C5)."""

    serial: int
    destination: int
    received_at: int = 0
