"""The child-node table (paper Table I) and position bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass
class ChildEntry:
    """One row of Table I: a child, its position, and the confirmation flag."""

    child: int
    position: int
    confirmed: bool = False
    allocated_at: int = 0
    #: Last tick the parent heard any evidence of this child (routing or
    #: TeleAdjusting beacon, confirmation). Drives code-space reclamation:
    #: a child silent past the reclaim TTL is presumed dead and its
    #: position is freed for newcomers.
    last_heard: int = 0


class SpaceExhausted(RuntimeError):
    """No free position and the space cannot grow further."""


class ChildTable:
    """Positions a parent has allocated to its children.

    Positions live in ``[1, 2**space_bits)``; position 0 is never allocated
    so a child's suffix is always distinguishable from "no position" and the
    parent's own code is never equal to a child's (the paper likewise starts
    allocation from position 1 — e.g. codes ``001``, ``010`` under ``0``).
    """

    MAX_SPACE_BITS = 15

    def __init__(self) -> None:
        self.space_bits = 0  # 0 = not yet sized (Algorithm 1 not run)
        self._entries: Dict[int, ChildEntry] = {}

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, child: int) -> bool:
        return child in self._entries

    def entry(self, child: int) -> Optional[ChildEntry]:
        """The entry for one key, or None."""
        return self._entries.get(child)

    def entries(self) -> List[ChildEntry]:
        """All current entries as a list."""
        return list(self._entries.values())

    def position_of(self, child: int) -> Optional[int]:
        """The child's allocated position, or None."""
        entry = self._entries.get(child)
        return entry.position if entry is not None else None

    def used_positions(self) -> Set[int]:
        """The set of positions currently allocated."""
        return {entry.position for entry in self._entries.values()}

    def capacity(self) -> int:
        """Allocatable positions at the current space size (position 0 excluded)."""
        if self.space_bits == 0:
            return 0
        return (1 << self.space_bits) - 1

    def has_free_position(self) -> bool:
        """True when another child can be allocated."""
        return len(self._entries) < self.capacity()

    # ------------------------------------------------------------ allocation
    @staticmethod
    def required_space_bits(n_children: int, reserve_cap: int = 10) -> int:
        """Algorithm 1 lines 1–6: size the space for ``n_children`` plus slack.

        The paper computes ``χ = N + [10, N/2]`` — a reserve for "potential
        hidden child nodes" between ``N/2`` and 10 — then the smallest ``π``
        with ``2**π ≥ χ``. We read the bracket as ``min(10, max(1, ceil(N/2)))``
        and additionally lose one pattern to the never-allocated position 0.
        """
        n = max(n_children, 1)
        reserve = min(reserve_cap, max(1, (n + 1) // 2))
        chi = n + reserve + 1  # +1 for the reserved position 0
        bits = 1
        while (1 << bits) < chi:
            bits += 1
        return bits

    def size_space(self, expected_children: int, now: int = 0) -> int:
        """Initial sizing (Algorithm 1). Returns the chosen space width."""
        if self.space_bits == 0:
            self.space_bits = self.required_space_bits(expected_children)
        return self.space_bits

    def _next_free(self) -> int:
        used = self.used_positions()
        for position in range(1, 1 << self.space_bits):
            if position not in used:
                return position
        raise SpaceExhausted(f"no free position in {self.space_bits}-bit space")

    def allocate(self, child: int, now: int = 0) -> ChildEntry:
        """Deterministically allocate a free position to ``child``.

        Re-allocation of an existing child returns its current entry; the
        space is extended first when full (paper §III-B6). Callers must
        notify children after an extension.
        """
        existing = self._entries.get(child)
        if existing is not None:
            return existing
        if self.space_bits == 0:
            self.space_bits = self.required_space_bits(1)
        if not self.has_free_position():
            self.extend_space()
        entry = ChildEntry(
            child=child, position=self._next_free(), allocated_at=now, last_heard=now
        )
        self._entries[child] = entry
        return entry

    def extend_space(self) -> int:
        """Grow the space by one bit, keeping all positions (paper §III-B6)."""
        if self.space_bits >= self.MAX_SPACE_BITS:
            raise SpaceExhausted(f"space already at {self.space_bits} bits")
        if self.space_bits == 0:
            self.space_bits = 1
        self.space_bits += 1
        return self.space_bits

    def confirm(self, child: int, position: int) -> bool:
        """Algorithm 2, consistent case: flag the entry confirmed.

        Returns True when ``(child, position)`` matched the table.
        """
        entry = self._entries.get(child)
        if entry is None or entry.position != position:
            return False
        entry.confirmed = True
        return True

    def reallocate(self, child: int, now: int = 0) -> ChildEntry:
        """Algorithm 2, mismatch case: give ``child`` a fresh position."""
        self._entries.pop(child, None)
        return self.allocate(child, now)

    def remove(self, child: int) -> None:
        """Remove the entry (no-op when absent)."""
        self._entries.pop(child, None)
