"""Neighbour code table: (neighbour, new code, old code) plus liveness flags.

Paper §III-B6 end: "each node also maintains its own path code and records
all neighbors' path codes in a *neighbor code table* with entries of form
(neighbor, new code, old code). The old code for each neighbor will be
remained for a period of time to guarantee reliable control against code
change caused by network dynamics." The unreachable flag supports the
backtracking strategy (§III-C3): a relay that failed toward a neighbour marks
it until the neighbour's next routing beacon is heard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.pathcode import PathCode


@dataclass
class NeighborCodeEntry:
    """One neighbour's code state (new/old codes, liveness)."""
    neighbor: int
    new_code: Optional[PathCode] = None
    old_code: Optional[PathCode] = None
    old_code_expires: int = 0
    #: Unreachable until this tick (0 = reachable). Cleared early by any
    #: routing beacon from the neighbour (paper §III-C3).
    unreachable_until: int = 0
    last_heard: int = 0

    def is_unreachable(self, now: int) -> bool:
        """True while the backtracking exclusion is in force."""
        return now < self.unreachable_until

    # Backward-compatible boolean view used by forwarding internals/tests.
    @property
    def unreachable(self) -> bool:
        """Boolean view of the unreachable state (legacy/tests)."""
        return self.unreachable_until > 0

    @unreachable.setter
    def unreachable(self, value: bool) -> None:
        """Boolean view of the unreachable state (legacy/tests)."""
        self.unreachable_until = (1 << 62) if value else 0


class NeighborCodeTable:
    """Per-node view of neighbours' path codes."""

    #: How long a superseded code stays usable (ticks); 60 s default.
    OLD_CODE_TTL = 60_000_000
    #: Backtracking penalty: how long a failed neighbour stays excluded when
    #: no beacon arrives to clear it sooner. Kept short: a "failure" is often
    #: just the neighbour being deaf inside its own transmission train.
    UNREACHABLE_TTL = 5_000_000

    def __init__(
        self,
        old_code_ttl: int = OLD_CODE_TTL,
        unreachable_ttl: int = UNREACHABLE_TTL,
    ) -> None:
        self._entries: Dict[int, NeighborCodeEntry] = {}
        self.old_code_ttl = old_code_ttl
        self.unreachable_ttl = unreachable_ttl

    def __contains__(self, neighbor: int) -> bool:
        return neighbor in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, neighbor: int) -> Optional[NeighborCodeEntry]:
        """The entry for one key, or None."""
        return self._entries.get(neighbor)

    def update_code(self, neighbor: int, code: PathCode, now: int) -> None:
        """Record ``neighbor``'s current code, demoting any previous one."""
        entry = self._entries.setdefault(neighbor, NeighborCodeEntry(neighbor))
        if entry.new_code is not None and entry.new_code != code:
            entry.old_code = entry.new_code
            entry.old_code_expires = now + self.old_code_ttl
        entry.new_code = code
        entry.last_heard = now

    def heard_from(self, neighbor: int, now: int) -> None:
        """Any routing beacon clears the unreachable flag (paper §III-C3)."""
        entry = self._entries.get(neighbor)
        if entry is not None:
            entry.unreachable_until = 0
            entry.last_heard = now

    def mark_unreachable(self, neighbor: int, now: int = 0) -> None:
        """Exclude ``neighbor`` until its next beacon or the TTL, whichever
        comes first (``now`` anchors the TTL; 0 keeps legacy sticky marking)."""
        entry = self._entries.get(neighbor)
        if entry is not None:
            entry.unreachable_until = (
                now + self.unreachable_ttl if now else (1 << 62)
            )

    def code_of(self, neighbor: int) -> Optional[PathCode]:
        """The neighbour's current code, or None."""
        entry = self._entries.get(neighbor)
        return entry.new_code if entry is not None else None

    def codes(
        self, now: int, include_old: bool = True, include_unreachable: bool = False
    ) -> Iterator[Tuple[int, PathCode]]:
        """Yield ``(neighbor, code)`` pairs, optionally including live old codes."""
        for entry in self._entries.values():
            if entry.is_unreachable(now) and not include_unreachable:
                continue
            if entry.new_code is not None:
                yield entry.neighbor, entry.new_code
            if (
                include_old
                and entry.old_code is not None
                and now < entry.old_code_expires
            ):
                yield entry.neighbor, entry.old_code

    def best_on_path(
        self,
        target: PathCode,
        now: int,
        min_length: int = -1,
        fresh_within: Optional[int] = None,
    ) -> Tuple[Optional[int], int]:
        """The reachable neighbour whose code is the longest prefix of
        ``target`` strictly longer than ``min_length`` bits.

        ``fresh_within`` restricts to neighbours heard within that many
        ticks — stale entries are how a node volunteers for forwarding work
        it cannot actually perform.

        Returns ``(neighbor, matched_length)`` or ``(None, -1)``.
        """
        best: Optional[int] = None
        best_len = min_length
        for neighbor, code in self.codes(now):
            if fresh_within is not None:
                entry = self._entries[neighbor]
                if now - entry.last_heard > fresh_within:
                    continue
            if code.is_prefix_of(target) and code.length > best_len:
                best, best_len = neighbor, code.length
        if best is None:
            return None, -1
        return best, best_len

    def neighbors(self) -> List[int]:
        """All neighbours with any recorded state."""
        return list(self._entries)
