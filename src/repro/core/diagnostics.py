"""Controller-side diagnostics: spotting the node that needs adjusting.

The paper's workflow (Figure 1, §II): the manager "monitor[s] the abnormal
situation by real-time data analysis" at the controller and, "once detecting
an anomaly, … utilizes network diagnostic methods to confirm the root cause"
before sending the control packet. This module provides the minimal
diagnostic substrate that workflow needs:

- :class:`TrafficMonitor` — per-origin delivery-rate tracking over sliding
  windows, with rate-anomaly detection (storms and silences).
- :class:`AdjustmentPlanner` — turns anomalies into remote-control payloads
  and tracks their outcomes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.messages import DataPacket
from repro.sim.simulator import Simulator
from repro.sim.units import MINUTE, SECOND, to_seconds


@dataclass
class Anomaly:
    """One detected misbehaviour."""

    node: int
    kind: str  # "storm" | "silence"
    observed_rate: float  # packets per second over the window
    expected_rate: float
    detected_at: int

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"node {self.node}: {self.kind} "
            f"({self.observed_rate * 60:.1f}/min vs expected "
            f"{self.expected_rate * 60:.1f}/min)"
        )


class TrafficMonitor:
    """Sliding-window per-origin rate tracking at the sink.

    Feed it every delivered collection packet (hook it into the sink's
    ``CtpForwarding.on_deliver`` or a collect handler); query
    :meth:`anomalies` to get storms (rate ≫ expected) and silences (no
    packets for several expected intervals).
    """

    def __init__(
        self,
        sim: Simulator,
        expected_ipi: int = 10 * MINUTE,
        window: Optional[int] = None,
        storm_factor: float = 4.0,
        silence_factor: float = 3.0,
    ) -> None:
        if expected_ipi <= 0:
            raise ValueError("expected IPI must be positive")
        self.sim = sim
        self.expected_ipi = expected_ipi
        self.window = window if window is not None else 3 * expected_ipi
        self.storm_factor = storm_factor
        self.silence_factor = silence_factor
        self._arrivals: Dict[int, Deque[int]] = defaultdict(deque)
        self._first_seen: Dict[int, int] = {}

    # ------------------------------------------------------------------ feed
    def packet_delivered(self, packet: DataPacket) -> None:
        """Record one delivered collection packet."""
        self.record(packet.origin)

    def record(self, origin: int) -> None:
        """Record one arrival from ``origin`` at the current time."""
        now = self.sim.now
        arrivals = self._arrivals[origin]
        arrivals.append(now)
        self._first_seen.setdefault(origin, now)
        floor = now - self.window
        while arrivals and arrivals[0] < floor:
            arrivals.popleft()

    # --------------------------------------------------------------- queries
    def rate(self, origin: int) -> float:
        """Packets per second from ``origin`` over the sliding window."""
        arrivals = self._arrivals.get(origin)
        if not arrivals:
            return 0.0
        # Floor the observation span at one second so rates stay meaningful
        # when history is replayed into the monitor in a single instant.
        span = max(min(self.window, self.sim.now - self._first_seen[origin]), SECOND)
        recent = [t for t in arrivals if t >= self.sim.now - self.window]
        return len(recent) / to_seconds(span)

    @property
    def expected_rate(self) -> float:
        """Expected packets per second given the configured IPI."""
        return 1.0 / to_seconds(self.expected_ipi)

    def known_origins(self) -> List[int]:
        """Origins seen so far, sorted."""
        return sorted(self._first_seen)

    def anomalies(self) -> List[Anomaly]:
        """Current storms and silences, worst first."""
        out: List[Anomaly] = []
        now = self.sim.now
        for origin in self.known_origins():
            rate = self.rate(origin)
            if rate > self.expected_rate * self.storm_factor:
                out.append(
                    Anomaly(
                        node=origin,
                        kind="storm",
                        observed_rate=rate,
                        expected_rate=self.expected_rate,
                        detected_at=now,
                    )
                )
                continue
            arrivals = self._arrivals.get(origin)
            last = arrivals[-1] if arrivals else self._first_seen[origin]
            if now - last > self.silence_factor * self.expected_ipi:
                out.append(
                    Anomaly(
                        node=origin,
                        kind="silence",
                        observed_rate=rate,
                        expected_rate=self.expected_rate,
                        detected_at=now,
                    )
                )
        out.sort(key=lambda a: abs(a.observed_rate - a.expected_rate), reverse=True)
        return out


@dataclass
class Adjustment:
    """A remote-control action planned in response to an anomaly."""

    anomaly: Anomaly
    payload: Dict[str, object]
    issued_at: Optional[int] = None
    delivered: Optional[bool] = None


class AdjustmentPlanner:
    """Maps anomalies to control payloads and dispatches them.

    ``send`` is any callable matching the harness's
    ``send_control(destination, payload)`` signature (TeleAdjusting, Drip,
    and RPL front-ends all qualify).
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[int, object], object],
        default_ipi: int = 10 * MINUTE,
    ) -> None:
        self.sim = sim
        self.send = send
        self.default_ipi = default_ipi
        self.history: List[Adjustment] = []

    def plan(self, anomaly: Anomaly) -> Adjustment:
        """The corrective payload for one anomaly (storm → reset IPI;
        silence → request a status report / re-enable sensing)."""
        if anomaly.kind == "storm":
            payload = {"set_ipi_s": to_seconds(self.default_ipi)}
        else:
            payload = {"request_status": True}
        return Adjustment(anomaly=anomaly, payload=payload)

    def dispatch(self, anomalies: List[Anomaly]) -> List[Adjustment]:
        """Plan and send a control packet per anomaly; returns the batch."""
        batch: List[Adjustment] = []
        for anomaly in anomalies:
            adjustment = self.plan(anomaly)
            adjustment.issued_at = self.sim.now
            self.send(anomaly.node, adjustment.payload)
            self.history.append(adjustment)
            batch.append(adjustment)
        return batch
