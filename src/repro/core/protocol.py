"""Per-node TeleAdjusting protocol: allocation + forwarding wired to a stack."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.allocation import AllocationEngine, AllocationParams
from repro.core.controller import Controller
from repro.core.forwarding import ForwardingParams, PendingControl, TeleForwarding
from repro.core.messages import EndToEndAck
from repro.core.pathcode import PathCode
from repro.net.messages import COLLECT_CODE_REPORT, COLLECT_E2E_ACK, DataPacket
from repro.radio.frame import FrameType
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack


class TeleAdjusting:
    """One node's TeleAdjusting instance.

    Construct one per :class:`~repro.net.node.NodeStack` (after the stack,
    before ``start()``). The sink's instance exposes :meth:`remote_control`;
    every instance exposes its :attr:`allocation` (path code state) and
    :attr:`forwarding` engines.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        controller: Optional[Controller] = None,
        allocation_params: Optional[AllocationParams] = None,
        forwarding_params: Optional[ForwardingParams] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.controller = controller
        self.allocation = AllocationEngine(
            sim, stack, params=allocation_params, is_sink=stack.is_root
        )
        self.forwarding = TeleForwarding(
            sim,
            stack,
            self.allocation,
            params=forwarding_params,
            controller=controller,
        )
        stack.register_handler(FrameType.TELE_BEACON, self.allocation.handle_tele_beacon)
        stack.register_handler(
            FrameType.POSITION_REQUEST, self.allocation.handle_position_request
        )
        stack.register_handler(
            FrameType.ALLOCATION_ACK, self.allocation.handle_allocation_ack
        )
        stack.register_handler(FrameType.CONFIRMATION, self.allocation.handle_confirmation)
        stack.register_handler(FrameType.CONTROL, self.forwarding.handle_control)
        stack.register_handler(FrameType.FEEDBACK, self.forwarding.handle_feedback)
        stack.register_handler(FrameType.HANDOVER, self.forwarding.handle_handover)
        stack.set_anycast_handler(self.forwarding.anycast_decision)
        stack.mac.snoop_handler = self.forwarding.snoop
        stack.beacon_fillers.append(self.allocation.fill_routing_beacon)
        stack.beacon_observers.append(self.allocation.observe_routing_beacon)
        if stack.is_root:
            stack.forwarding.collect_handlers[COLLECT_E2E_ACK] = self._e2e_ack
            if controller is not None:
                stack.forwarding.collect_handlers[COLLECT_CODE_REPORT] = (
                    self._code_report
                )
                stack.forwarding.deliver_observers.append(self._piggyback_report)
        else:
            # Figure 1: nodes report their path code to the remote
            # controller. The code rides piggybacked on every data packet
            # the node originates (collection traffic, acks) — near-zero
            # cost — plus a rare explicit periodic report as a floor for
            # silent nodes.
            stack.forwarding.origin_decorators.append(self._stamp_code)
        self._report_scheduled = False
        self.code_report_interval = 30 * 60 * 1_000_000  # 30 min
        self._started = False

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        self.allocation.start()
        if not self.stack.is_root:
            jitter = self.sim.rng(f"code-report-{self.node_id}").randrange(
                self.code_report_interval
            )
            self.sim.schedule(jitter, self._periodic_code_report)

    def reset_state(self) -> None:
        """Fault-injection hook: wipe volatile protocol state, as a reboot
        would. Handlers stay registered — the same objects serve the
        rebooted node; the path code, positions, neighbour/child tables,
        and relay caches are gone and must be re-acquired over the air."""
        self.allocation.reset()
        self.forwarding.reset()

    def _periodic_code_report(self) -> None:
        self.sim.schedule(self.code_report_interval, self._periodic_code_report)
        self.report_code_to_controller()

    def _stamp_code(self, packet: DataPacket) -> None:
        """Origin decorator: piggyback our current code on outgoing data."""
        code = self.allocation.code
        if code is not None:
            packet.tele_code = (code.value, code.length)

    def _piggyback_report(self, packet: DataPacket) -> None:
        """Sink observer: harvest piggybacked codes into the controller."""
        if packet.tele_code is None or self.controller is None:
            return
        value, length = packet.tele_code
        self.controller.report_code(packet.origin, PathCode(value, length))

    # ------------------------------------------------------------- sink side
    def remote_control(
        self,
        destination: int,
        payload: object = None,
        done: Optional[Callable[[PendingControl], None]] = None,
        destination_code: Optional[PathCode] = None,
    ) -> PendingControl:
        """Send a control packet from the sink to ``destination``.

        The destination's path code comes from the controller's registry
        unless given explicitly. Raises ``LookupError`` when unknown.
        """
        if not self.stack.is_root:
            raise RuntimeError("remote_control is a sink-side operation")
        if destination_code is None:
            if self.controller is None:
                raise LookupError("no controller to resolve the destination code")
            destination_code = self.controller.code_of(destination)
            if destination_code is None:
                raise LookupError(f"no path code known for node {destination}")
        return self.forwarding.send_control(destination, destination_code, payload, done)

    def _e2e_ack(self, packet: DataPacket) -> None:
        ack = packet.payload
        if isinstance(ack, EndToEndAck):
            self.forwarding.e2e_ack_received(ack)

    def _code_report(self, packet: DataPacket) -> None:
        code = packet.payload
        if isinstance(code, PathCode) and self.controller is not None:
            self.controller.report_code(packet.origin, code)

    # ------------------------------------------------------------- node side
    def report_code_to_controller(self) -> bool:
        """Send our current code up the tree as a data packet (Figure 1).

        Returns False when we have no code yet.
        """
        code = self.allocation.code
        if code is None:
            return False
        self.stack.forwarding.send(COLLECT_CODE_REPORT, code)
        return True

    @property
    def path_code(self) -> Optional[PathCode]:
        """This node's current path code, or None."""
        return self.allocation.code
