"""Analytical model of path-code length (validates Algorithm 1's sizing).

The paper observes (Fig 6(a)/(b), Table II) that code length grows linearly
with hop count at a slope set by per-hop child counts: each hop contributes
``required_space_bits(N)`` bits, where ``N`` is the parent's child count.
This module computes that expectation exactly for a known tree — and from a
child-count distribution — so simulated code lengths can be checked against
the model rather than against magic numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.childtable import ChildTable
from repro.metrics.stats import mean


def bits_for_children(n_children: int) -> int:
    """Bits one hop contributes when the parent has ``n_children`` children.

    Delegates to Algorithm 1's sizing (including the hidden-child reserve
    and the reserved zero position).
    """
    return ChildTable.required_space_bits(n_children)


def expected_code_length(child_counts_along_path: Sequence[int]) -> int:
    """Exact code length of a node whose ancestors (sink first) have the
    given child counts. The sink's own 1-bit code is included."""
    return 1 + sum(bits_for_children(n) for n in child_counts_along_path)


def expected_length_by_hop(
    mean_children_by_hop: Mapping[int, float], max_hop: Optional[int] = None
) -> Dict[int, float]:
    """Model curve for Figure 6(a): expected code bits at each hop.

    ``mean_children_by_hop[h]`` is the average child count of the nodes at
    hop ``h`` (hop 0 = sink). The expected length at hop ``h`` accumulates
    the per-hop bit space down the ancestor chain; fractional child counts
    interpolate between the two adjacent integer space sizes.
    """
    if max_hop is None:
        max_hop = max(mean_children_by_hop, default=0)
    lengths: Dict[int, float] = {0: 1.0}
    running = 1.0
    for hop in range(0, max_hop):
        children = mean_children_by_hop.get(hop, 1.0)
        running += _fractional_bits(children)
        lengths[hop + 1] = running
    return lengths


def _fractional_bits(children: float) -> float:
    """Interpolated Algorithm-1 space size for a fractional child count."""
    if children <= 0:
        children = 1.0
    low = int(children)
    frac = children - low
    bits_low = bits_for_children(max(low, 1))
    if frac == 0:
        return float(bits_low)
    bits_high = bits_for_children(low + 1)
    return bits_low + frac * (bits_high - bits_low)


def tree_code_lengths(parents: Mapping[int, Optional[int]], sink: int) -> Dict[int, int]:
    """Exact code lengths for a whole static tree.

    ``parents[node]`` is the node's parent (``None``/missing for the sink).
    Returns bits per node, assuming every parent sizes its space once with
    its full child set — the steady state Algorithm 1 converges to.
    """
    children: Dict[int, List[int]] = {}
    for node, parent in parents.items():
        if parent is not None:
            children.setdefault(parent, []).append(node)
    space: Dict[int, int] = {
        parent: bits_for_children(len(kids)) for parent, kids in children.items()
    }
    lengths: Dict[int, int] = {sink: 1}

    def resolve(node: int) -> int:
        """Code length of one node, memoised up the tree."""
        if node in lengths:
            return lengths[node]
        parent = parents[node]
        assert parent is not None
        lengths[node] = resolve(parent) + space[parent]
        return lengths[node]

    for node in parents:
        resolve(node)
    return lengths


def model_vs_measured(
    measured_by_hop: Mapping[int, Sequence[int]],
    children_by_hop: Mapping[int, Sequence[int]],
) -> Dict[int, Dict[str, float]]:
    """Compare simulated code lengths against the analytic expectation.

    Takes Figure 6(a)-style groupings (hop → list of code lengths) and
    Figure 6(b)-style groupings (hop → list of child counts); returns per
    hop: measured mean, modelled mean, and their ratio.
    """
    mean_children = {
        hop: (mean([float(c) for c in counts]) or 1.0)
        for hop, counts in children_by_hop.items()
    }
    modelled = expected_length_by_hop(mean_children, max_hop=max(measured_by_hop, default=0))
    out: Dict[int, Dict[str, float]] = {}
    for hop, lengths in measured_by_hop.items():
        if hop not in modelled or not lengths:
            continue
        measured = mean([float(x) for x in lengths]) or 0.0
        model = modelled[hop]
        out[hop] = {
            "measured": measured,
            "model": model,
            "ratio": measured / model if model else float("inf"),
        }
    return out
