"""``repro.farm`` — the distributed experiment farm.

Everything the runner already guarantees per machine — content-addressed
caching, journaled crash-safety, retry with quarantine — generalised to
*many* machines and served over HTTP:

- :class:`LeaseQueue` (:mod:`repro.farm.queue`) — a file-backed
  work-stealing queue: cells are claimed with TTL leases, a dead worker's
  lease expires and is stolen (charging the cell's retry budget), and a
  cell whose lease keeps dying is quarantined as poison — the same
  semantics the in-process engine applies, expressed as files;
- :func:`drain_queue` (:mod:`repro.farm.worker`) — the worker loop:
  ``python -m repro farm worker`` attaches any process (any host that can
  see the queue directory) to a grid, executing leased cells through the
  very same :func:`repro.runner.execute.run_task` as every other executor;
- :class:`QueueExecutor` (:mod:`repro.farm.executor`) — plugs the queue
  into :class:`repro.runner.ParallelRunner` as a
  :class:`~repro.runner.executors.CellExecutor`: the scheduler enqueues
  its pending cells, polls completion markers, optionally drains cells
  itself, and folds worker failures back into the usual telemetry;
- :class:`JobStore` + :class:`FarmService`
  (:mod:`repro.farm.jobs` / :mod:`repro.farm.service`) — results as a
  service: ``python -m repro serve`` accepts experiment specs over HTTP,
  streams cell-level progress (polling + SSE), and answers identical
  resubmissions entirely from cache — zero re-execution;
- :mod:`repro.farm.client` — a stdlib urllib client for the service
  (used by ``python -m repro farm submit/status/results``).

All executors are bit-identical for the same specs (enforced by
``tests/test_executor_conformance.py``): simulations are deterministic
per spec, so sharding only changes *where* cells run, never the results.
"""

from repro.farm.executor import QueueExecutor
from repro.farm.jobs import Job, JobStore, specs_from_payload
from repro.farm.queue import Lease, LeaseQueue, QUEUE_SCHEMA
from repro.farm.service import FarmService, run_service
from repro.farm.worker import WorkerStats, drain_queue

__all__ = [
    "QUEUE_SCHEMA",
    "FarmService",
    "Job",
    "JobStore",
    "Lease",
    "LeaseQueue",
    "QueueExecutor",
    "WorkerStats",
    "drain_queue",
    "run_service",
    "specs_from_payload",
]
