"""A tiny stdlib client for the farm service.

Backs ``python -m repro farm submit/status/results`` and the test suite;
plain :mod:`urllib` so scripts (and CI) need nothing installed. Every
helper raises :class:`FarmClientError` with the server's own message on
non-2xx responses.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, Mapping, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.farm.jobs import TERMINAL_STATES


class FarmClientError(RuntimeError):
    """The service answered with an error (or did not answer at all)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


def _request(
    base: str,
    path: str,
    payload: Optional[Mapping[str, Any]] = None,
    timeout: float = 30.0,
) -> Dict[str, Any]:
    url = base.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    try:
        with urlopen(Request(url, data=data, headers=headers), timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        raise FarmClientError(
            detail or f"HTTP {exc.code} for {url}", status=exc.code
        ) from None
    except URLError as exc:
        raise FarmClientError(f"cannot reach {url}: {exc.reason}") from None


def health(base: str, timeout: float = 10.0) -> Dict[str, Any]:
    return _request(base, "/healthz", timeout=timeout)


def submit(
    base: str, payload: Mapping[str, Any], timeout: float = 30.0
) -> Dict[str, Any]:
    """POST a spec payload; returns the job summary (with ``id``)."""
    return _request(base, "/jobs", payload=payload, timeout=timeout)["job"]


def job(base: str, job_id: str, timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, f"/jobs/{job_id}", timeout=timeout)


def results(base: str, job_id: str, timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, f"/jobs/{job_id}/results", timeout=timeout)


def wait(
    base: str,
    job_id: str,
    timeout: float = 300.0,
    poll_s: float = 0.25,
) -> Dict[str, Any]:
    """Poll until the job reaches a terminal state; returns final status."""
    deadline = time.monotonic() + timeout
    while True:
        status = job(base, job_id)
        if status["state"] in TERMINAL_STATES:
            return status
        if time.monotonic() >= deadline:
            raise FarmClientError(
                f"job {job_id} still {status['state']} after {timeout:.0f}s"
            )
        time.sleep(poll_s)


def events(
    base: str,
    job_id: str,
    after: int = -1,
    timeout: float = 300.0,
) -> Iterator[Dict[str, Any]]:
    """Consume the job's SSE stream, yielding decoded event payloads.

    Terminates when the server sends its ``end`` frame (job reached a
    terminal state) or the socket times out.
    """
    url = base.rstrip("/") + f"/jobs/{job_id}/events?after={after}"
    try:
        with urlopen(Request(url), timeout=timeout) as stream:
            data_lines = []
            event_name = "message"
            for raw in stream:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event:"):
                    event_name = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data_lines.append(line.split(":", 1)[1].strip())
                elif line == "":
                    if event_name == "end":
                        return
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                    data_lines = []
                    event_name = "message"
    except HTTPError as exc:
        raise FarmClientError(
            f"HTTP {exc.code} for {url}", status=exc.code
        ) from None
    except URLError as exc:
        raise FarmClientError(f"cannot reach {url}: {exc.reason}") from None


__all__ = [
    "FarmClientError",
    "events",
    "health",
    "job",
    "results",
    "submit",
    "wait",
]
