"""A tiny stdlib client for the farm service, hardened for bad weather.

Backs ``python -m repro farm submit/status/results/watch`` and the test
suite; plain :mod:`urllib` so scripts (and CI) need nothing installed.

Resilience contract:

- every helper raises :class:`FarmClientError` carrying the server's own
  JSON ``error`` detail and HTTP status — callers never see a raw
  ``urllib`` traceback;
- ``429``/``503`` answers (admission control, graceful drain) and
  connection-level failures are retried with **seeded** exponential
  backoff + jitter (a :class:`~repro.runner.retry.RetryPolicy`), honouring
  the server's ``Retry-After`` when it names one — so a saturated or
  restarting service costs a submission a short wait, not an error;
- :func:`watch` consumes the SSE stream and, when the connection drops
  mid-stream (no ``end`` frame), reconnects from ``Last-Event-ID`` with a
  bounded retry budget — every event is yielded exactly once even across
  reconnects, because the cursor only advances on yielded frames.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Iterator, Mapping, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.farm.jobs import TERMINAL_STATES
from repro.runner.retry import RetryPolicy

#: Statuses that mean "try again shortly", not "you did something wrong".
RETRYABLE_STATUSES = frozenset({429, 503})

#: Default extra attempts for retryable failures (connection refused,
#: 429, 503) before giving up with the underlying error.
DEFAULT_RETRIES = 4

#: Backoff schedule for client-side retries: seeded, so a test (or a
#: havoc soak) replays the identical wait sequence run after run.
DEFAULT_POLICY = RetryPolicy(
    retries=DEFAULT_RETRIES, backoff_base_s=0.2, backoff_max_s=5.0, seed=0
)


class FarmClientError(RuntimeError):
    """The service answered with an error (or did not answer at all)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


def _error_detail(exc: HTTPError) -> str:
    """The server's JSON ``error`` field, or "" when it sent none."""
    try:
        return str(json.loads(exc.read().decode("utf-8")).get("error", ""))
    except Exception:
        return ""


def _retry_after(exc: HTTPError) -> Optional[float]:
    raw = exc.headers.get("Retry-After") if exc.headers else None
    if raw is None:
        return None
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return None


def _request(
    base: str,
    path: str,
    payload: Optional[Mapping[str, Any]] = None,
    timeout: float = 30.0,
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """One JSON round trip, with seeded backoff on retryable failures."""
    policy = policy if policy is not None else DEFAULT_POLICY
    url = base.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    last_error: Optional[FarmClientError] = None
    for attempt in range(policy.max_attempts):
        try:
            with urlopen(
                Request(url, data=data, headers=headers), timeout=timeout
            ) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except HTTPError as exc:
            detail = _error_detail(exc)
            last_error = FarmClientError(
                detail or f"HTTP {exc.code} for {url}", status=exc.code
            )
            if exc.code not in RETRYABLE_STATUSES:
                raise last_error from None
            server_delay = _retry_after(exc)
        except URLError as exc:
            last_error = FarmClientError(f"cannot reach {url}: {exc.reason}")
            server_delay = None
        if attempt + 1 >= policy.max_attempts:
            break
        # Honour the server's Retry-After when it names one, otherwise
        # fall back to the policy's seeded exponential backoff — keyed by
        # path so concurrent helpers don't share a jitter stream.
        delay = (
            server_delay
            if server_delay is not None
            else policy.delay(f"client:{path}", attempt)
        )
        time.sleep(delay)
    assert last_error is not None
    raise last_error from None


def health(base: str, timeout: float = 10.0) -> Dict[str, Any]:
    return _request(base, "/healthz", timeout=timeout)


def submit(
    base: str,
    payload: Mapping[str, Any],
    timeout: float = 30.0,
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """POST a spec payload; returns the job summary (with ``id``)."""
    return _request(
        base, "/jobs", payload=payload, timeout=timeout, policy=policy
    )["job"]


def job(base: str, job_id: str, timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, f"/jobs/{job_id}", timeout=timeout)


def results(base: str, job_id: str, timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, f"/jobs/{job_id}/results", timeout=timeout)


def wait(
    base: str,
    job_id: str,
    timeout: float = 300.0,
    poll_s: float = 0.25,
) -> Dict[str, Any]:
    """Poll until the job reaches a terminal state; returns final status."""
    deadline = time.monotonic() + timeout
    while True:
        status = job(base, job_id)
        if status["state"] in TERMINAL_STATES:
            return status
        if time.monotonic() >= deadline:
            raise FarmClientError(
                f"job {job_id} still {status['state']} after {timeout:.0f}s"
            )
        time.sleep(poll_s)


def _stream_frames(
    base: str, job_id: str, after: int, timeout: float
) -> Iterator[Dict[str, Any]]:
    """One SSE connection: yield decoded frames until ``end`` or a drop.

    Yields ``{"__end__": True}`` as the final item when the server sent
    its terminal frame; a connection that just stops (drop, reset, server
    abort) raises the underlying :class:`OSError` /
    :class:`http.client.HTTPException` for the caller to handle.
    """
    url = base.rstrip("/") + f"/jobs/{job_id}/events"
    request = Request(url, headers={"Last-Event-ID": str(after)})
    with urlopen(request, timeout=timeout) as stream:
        data_lines = []
        event_name = "message"
        for raw in stream:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event:"):
                event_name = line.split(":", 1)[1].strip()
            elif line.startswith("data:"):
                data_lines.append(line.split(":", 1)[1].strip())
            elif line == "":
                if event_name == "end":
                    yield {"__end__": True}
                    return
                if data_lines:
                    yield json.loads("\n".join(data_lines))
                data_lines = []
                event_name = "message"


def events(
    base: str,
    job_id: str,
    after: int = -1,
    timeout: float = 300.0,
) -> Iterator[Dict[str, Any]]:
    """Consume the job's SSE stream once, yielding decoded event payloads.

    Terminates when the server sends its ``end`` frame; a dropped
    connection surfaces as :class:`FarmClientError`. For a stream that
    survives drops, use :func:`watch`.
    """
    url = base.rstrip("/") + f"/jobs/{job_id}/events"
    try:
        for event in _stream_frames(base, job_id, after, timeout):
            if event.get("__end__"):
                return
            yield event
    except HTTPError as exc:
        detail = _error_detail(exc)
        raise FarmClientError(
            detail or f"HTTP {exc.code} for {url}", status=exc.code
        ) from None
    except (OSError, http.client.HTTPException) as exc:
        raise FarmClientError(f"event stream for {url} failed: {exc}") from None


def watch(
    base: str,
    job_id: str,
    after: int = -1,
    timeout: float = 300.0,
    reconnects: int = 5,
    policy: Optional[RetryPolicy] = None,
    on_reconnect: Optional[Callable[[int, int], None]] = None,
) -> Iterator[Dict[str, Any]]:
    """The job's SSE stream with automatic ``Last-Event-ID`` reconnect.

    A dropped connection (server abort, network reset, clean close with
    no ``end`` frame) is retried up to ``reconnects`` times with the
    policy's seeded backoff, resuming from the last *yielded* event's
    sequence number — so no event is lost and none is repeated.
    ``on_reconnect(attempt, cursor)`` is invoked before each retry (the
    hook the soak test uses to count actual drops). Exhausting the
    budget raises :class:`FarmClientError`.
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    cursor = after
    drops = 0
    deadline = time.monotonic() + timeout
    while True:
        dropped: Optional[str] = None
        try:
            for event in _stream_frames(
                base, job_id, cursor, max(deadline - time.monotonic(), 0.1)
            ):
                if event.get("__end__"):
                    return
                if "seq" in event:
                    cursor = event["seq"]
                yield event
        except HTTPError as exc:
            detail = _error_detail(exc)
            raise FarmClientError(
                detail or f"HTTP {exc.code} watching {job_id}", status=exc.code
            ) from None
        except (OSError, http.client.HTTPException, ValueError) as exc:
            dropped = repr(exc)
        if dropped is None:
            # Clean close without an end frame: the server went away
            # mid-stream (drain, crash, injected sse_drop).
            dropped = "connection closed before end frame"
        drops += 1
        if drops > reconnects:
            raise FarmClientError(
                f"event stream for {job_id} dropped {drops} times "
                f"(last: {dropped}); reconnect budget exhausted"
            )
        if time.monotonic() >= deadline:
            raise FarmClientError(
                f"watch on {job_id} exceeded {timeout:.0f}s (last drop: "
                f"{dropped})"
            )
        if on_reconnect is not None:
            on_reconnect(drops, cursor)
        time.sleep(policy.delay(f"watch:{job_id}", drops - 1))


__all__ = [
    "DEFAULT_POLICY",
    "DEFAULT_RETRIES",
    "FarmClientError",
    "RETRYABLE_STATUSES",
    "events",
    "health",
    "job",
    "results",
    "submit",
    "wait",
    "watch",
]
