"""A file-backed work-stealing lease queue for grid cells.

The queue is a directory any worker (process or host) with filesystem
access can join — no broker, no daemon, no socket. Atomic primitives the
whole protocol reduces to: ``open(O_CREAT|O_EXCL)`` for first claims and
``os.replace`` for everything else, both atomic on POSIX filesystems.

Layout under the queue root::

    meta.json        queue parameters (schema, lease TTL, retry budget)
    tasks/<fp>.json  one enqueued cell: the serialised TaskSpec + seq
    leases/<fp>.json the live claim: worker, token, attempt, expiry
    done/<fp>.json   terminal success: the full result payload
    failed/<fp>.json terminal failure: error, kind, quarantined flag

Lease semantics mirror the in-process engine's retry machinery:

- a **claim** creates the lease exclusively (attempt 0);
- a live worker **renews** its lease well inside the TTL (the analogue of
  the engine's heartbeat);
- a lease past its expiry means the worker died or hung — the next
  claimer **steals** it, charging one attempt (the analogue of the
  watchdog kill + retry);
- a cell whose lease has been stolen ``max_attempts`` times is **poison**
  and is quarantined with a terminal ``failed`` marker instead of being
  re-leased forever — exactly the engine's poison-cell rule.

Steals are token-confirmed: the stealer atomically replaces the lease
with a fresh token and re-reads it; losing the read-back means another
stealer won the race and this claimer walks away. Duplicate *execution*
(a slow-but-alive worker racing its stealer) is tolerated by design:
cells are deterministic and results are content-addressed, so the second
completion installs bit-identical bytes — at-least-once execution,
exactly-once results.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.havoc import fs as havocfs
from repro.havoc import proc as havocproc
from repro.runner.taskspec import TaskSpec

#: Bump when the on-disk queue layout changes incompatibly.
QUEUE_SCHEMA = 1


def default_worker_id() -> str:
    """host:pid — unique enough to attribute leases in telemetry."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` via unique temp + atomic rename (torn-read free).

    Fail-closed against lying disks: the temp file is read back and
    compared to the intended bytes *before* the rename, so a short or
    corrupted write (ENOSPC mid-write, bit-rot in the page cache) raises
    instead of installing a torn marker. An exception always leaves the
    destination untouched — the caller degrades to re-execution, never to
    a wrong or duplicate result.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            havocfs.write(handle, text, path)
        if havocfs.read_bytes(tmp) != text.encode("utf-8"):
            raise OSError(
                errno.EIO, f"torn write detected installing {path.name}", str(path)
            )
        havocfs.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a JSON file, tolerating absence and torn/damaged content."""
    try:
        record = json.loads(havocfs.read_bytes(path).decode("utf-8"))
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


@dataclass
class Lease:
    """One worker's live claim on one cell."""

    fingerprint: str
    spec: TaskSpec
    worker: str
    token: str
    #: Retry-budget attempts already charged (steals of expired leases).
    attempt: int
    expires: float

    @property
    def name(self) -> str:
        return self.spec.name


class LeaseQueue:
    """The shared queue one grid's cells are drained through.

    ``lease_ttl`` bounds how long a dead worker can sit on a cell before
    it is re-leased; live workers renew at ``ttl/4``, so only an actual
    death or a multi-second freeze ever loses a lease. ``max_attempts``
    is the poison budget — total tries (first claim + steals) before a
    cell is quarantined.

    ``clock`` is the lease clock (defaults to the farm clock, which is
    ``time.time`` unless a havoc plan skews it) — injectable so tests can
    model drifting hosts without sleeping.
    """

    def __init__(
        self,
        root: Union[str, Path],
        lease_ttl: float = 15.0,
        max_attempts: int = 3,
        worker_id: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0 seconds")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._clock = clock if clock is not None else havocproc.farm_time
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.worker_id = worker_id or default_worker_id()
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"

    # --------------------------------------------------------------- set-up
    def ensure(self) -> None:
        """Create the queue layout (idempotent, concurrent-safe)."""
        for directory in (
            self.root, self.tasks_dir, self.leases_dir, self.done_dir, self.failed_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)
        meta = self.root / "meta.json"
        if not meta.exists():
            _atomic_write_json(
                meta,
                {
                    "schema": QUEUE_SCHEMA,
                    "lease_ttl": self.lease_ttl,
                    "max_attempts": self.max_attempts,
                },
            )

    # -------------------------------------------------------------- enqueue
    def put(self, spec: TaskSpec, seq: int = 0) -> bool:
        """Enqueue one cell; False when it was already enqueued.

        ``seq`` orders claims (workers drain roughly in grid order);
        re-enqueueing an identical cell is a no-op, and a cell that
        already reached a terminal marker is never re-opened.
        """
        self.ensure()
        path = self.tasks_dir / f"{spec.fingerprint}.json"
        if path.exists():
            return False
        _atomic_write_json(
            path,
            {
                "fingerprint": spec.fingerprint,
                "seq": seq,
                "spec": spec.to_dict(),
                "enqueued_by": self.worker_id,
            },
        )
        return True

    def put_all(self, specs: List[TaskSpec]) -> int:
        """Enqueue a grid in order; returns how many were newly enqueued."""
        return sum(1 for seq, spec in enumerate(specs) if self.put(spec, seq))

    # ---------------------------------------------------------------- state
    def _settled(self, fingerprint: str) -> bool:
        return (self.done_dir / f"{fingerprint}.json").exists() or (
            self.failed_dir / f"{fingerprint}.json"
        ).exists()

    def outcome_for(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The terminal marker for one cell, or None while it is open.

        The returned record carries ``"terminal": "done" | "failed"``.
        A torn marker (absurdly unlikely given atomic installs, but disks
        lie) reads as still-open — the cell simply re-runs.
        """
        record = _read_json(self.done_dir / f"{fingerprint}.json")
        if record is not None:
            record["terminal"] = "done"
            return record
        record = _read_json(self.failed_dir / f"{fingerprint}.json")
        if record is not None:
            record["terminal"] = "failed"
            return record
        return None

    def _open_tasks(self) -> List[Dict[str, Any]]:
        """Enqueued cells without a terminal marker, in seq order."""
        tasks = []
        try:
            names = os.listdir(self.tasks_dir)
        except OSError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            fingerprint = name[: -len(".json")]
            if self._settled(fingerprint):
                continue
            record = _read_json(self.tasks_dir / name)
            if record is None or "spec" not in record:
                continue
            tasks.append(record)
        tasks.sort(key=lambda r: (r.get("seq", 0), r.get("fingerprint", "")))
        return tasks

    def unfinished(self) -> int:
        """Cells still lacking a terminal marker (leased or not)."""
        return len(self._open_tasks())

    def snapshot(self) -> Dict[str, Any]:
        """Queue counters for status endpoints and progress lines."""
        def count(directory: Path) -> int:
            try:
                return sum(1 for n in os.listdir(directory) if n.endswith(".json"))
            except OSError:
                return 0

        open_tasks = self._open_tasks()
        return {
            "tasks": count(self.tasks_dir),
            "open": len(open_tasks),
            "leased": count(self.leases_dir),
            "done": count(self.done_dir),
            "failed": count(self.failed_dir),
        }

    # ---------------------------------------------------------------- claim
    def _try_claim(self, task: Dict[str, Any], now: float) -> Optional[Lease]:
        fingerprint = task["fingerprint"]
        spec = TaskSpec.from_dict(task["spec"])
        lease_path = self.leases_dir / f"{fingerprint}.json"
        token = os.urandom(8).hex()

        def lease_record(attempt: int) -> Dict[str, Any]:
            return {
                "fingerprint": fingerprint,
                "worker": self.worker_id,
                "pid": os.getpid(),
                "token": token,
                "attempt": attempt,
                "expires": now + self.lease_ttl,
            }

        # First claim: exclusive create wins or loses atomically.
        try:
            fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        except OSError:
            return None
        else:
            try:
                with os.fdopen(fd, "w") as handle:
                    havocfs.write(
                        handle,
                        json.dumps(lease_record(0), sort_keys=True),
                        lease_path,
                    )
            except OSError:
                # Fail closed: a half-written first claim must not sit as a
                # torn lease charging the cell a steal — remove it and
                # re-raise so the worker loop can count the storage failure
                # (and eventually abort) instead of spinning on a queue it
                # can never claim from.
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                raise
            return Lease(
                fingerprint, spec, self.worker_id, token, 0, now + self.lease_ttl
            )

        # Somebody holds (or held) it. A valid, unexpired lease is theirs.
        existing = _read_json(lease_path)
        if existing is not None and float(existing.get("expires", 0)) > now:
            return None
        # Expired (or torn) lease: steal, charging one attempt.
        attempt = int(existing.get("attempt", 0)) + 1 if existing else 1
        if attempt >= self.max_attempts:
            # Poison: the cell has eaten its whole budget in dead leases.
            self.quarantine(
                fingerprint,
                spec,
                attempts=attempt,
                error=(
                    f"lease expired {attempt} time(s) "
                    "(worker died or hung each time)"
                ),
            )
            try:
                os.unlink(lease_path)
            except OSError:
                pass
            return None
        _atomic_write_json(lease_path, lease_record(attempt))
        confirmed = _read_json(lease_path)
        if confirmed is None or confirmed.get("token") != token:
            return None  # another stealer won the replace race
        return Lease(
            fingerprint, spec, self.worker_id, token, attempt, now + self.lease_ttl
        )

    def claim(self) -> Optional[Lease]:
        """Claim the next open cell, stealing expired leases on the way.

        Returns None when nothing is claimable right now — every open cell
        is held by a live lease (or the queue is drained). Raises
        ``OSError`` when the claim *write* fails (disk full, EIO): the
        cell stays open, nothing torn is left behind, and the caller can
        tell a broken disk from an empty queue.
        """
        self.ensure()
        now = self._clock()
        for task in self._open_tasks():
            lease = self._try_claim(task, now)
            if lease is not None:
                return lease
        return None

    # ---------------------------------------------------------------- lease
    def renew(self, lease: Lease) -> bool:
        """Extend a held lease; False when it was stolen (abandon the cell).

        Renewal re-reads the lease and only extends it while the token is
        still ours — a worker that froze past the TTL and lost its lease
        learns that here instead of double-finalising.
        """
        lease_path = self.leases_dir / f"{lease.fingerprint}.json"
        current = _read_json(lease_path)
        if current is None or current.get("token") != lease.token:
            return False
        current["expires"] = self._clock() + self.lease_ttl
        _atomic_write_json(lease_path, current)
        lease.expires = current["expires"]
        return True

    def release(self, lease: Lease) -> None:
        """Give a claim back without a terminal marker (interrupt path)."""
        lease_path = self.leases_dir / f"{lease.fingerprint}.json"
        current = _read_json(lease_path)
        if current is not None and current.get("token") == lease.token:
            try:
                os.unlink(lease_path)
            except OSError:
                pass

    # ------------------------------------------------------------- terminal
    def complete(
        self,
        lease: Lease,
        reply: Dict[str, Any],
        source: str = "executed",
    ) -> None:
        """Install the success marker (idempotent) and drop the lease."""
        path = self.done_dir / f"{lease.fingerprint}.json"
        if not path.exists():  # losing this race is fine: results are equal
            _atomic_write_json(
                path,
                {
                    "fingerprint": lease.fingerprint,
                    "result": reply["result"],
                    "wall_s": reply.get("wall_s", 0.0),
                    "events": reply.get("events"),
                    "attempts": lease.attempt + 1,
                    "worker": lease.worker,
                    "source": source,
                },
            )
        self.release(lease)

    def fail(
        self,
        lease: Lease,
        error: str,
        kind: str = "error",
        attempts: Optional[int] = None,
        quarantined: bool = False,
    ) -> None:
        """Install the terminal failure marker and drop the lease."""
        self._write_failed(
            lease.fingerprint,
            error=error,
            kind=kind,
            attempts=attempts if attempts is not None else lease.attempt + 1,
            quarantined=quarantined,
            worker=lease.worker,
        )
        self.release(lease)

    def quarantine(
        self, fingerprint: str, spec: TaskSpec, attempts: int, error: str
    ) -> None:
        """Mark a poison cell failed-and-quarantined (no lease required)."""
        self._write_failed(
            fingerprint,
            error=error,
            kind="crash",
            attempts=attempts,
            quarantined=True,
            worker=self.worker_id,
        )

    def _write_failed(self, fingerprint: str, **fields: Any) -> None:
        path = self.failed_dir / f"{fingerprint}.json"
        if not path.exists():
            _atomic_write_json(path, {"fingerprint": fingerprint, **fields})

    # ------------------------------------------------------------ iteration
    def outcomes(self) -> Iterator[Dict[str, Any]]:
        """Every terminal marker currently installed (done + failed)."""
        for directory in (self.done_dir, self.failed_dir):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                record = self.outcome_for(name[: -len(".json")])
                if record is not None:
                    yield record
