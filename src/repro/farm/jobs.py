"""Job store: submitted experiment specs and their cell-level progress.

A **job** is one submitted grid: a list of :class:`~repro.runner.TaskSpec`
cells built from a JSON payload (:func:`specs_from_payload`), executed by
the service through a :class:`~repro.runner.ParallelRunner`, its progress
events and final telemetry retained for polling and SSE streaming.

Job ids embed the **grid fingerprint** (hash of the ordered cell
fingerprints), so identical resubmissions are trivially correlated — and
because every cell is content-addressed in the shared result cache, a
resubmitted grid re-runs through the scheduler's cache pass and settles
with ``cached == cells`` and zero re-executed cells.

The store is written on the runner's thread and read from asyncio
handlers, so every mutation happens under one condition variable; readers
snapshot under it and event streamers block on it (bridged through
``run_in_executor`` on the service side).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.runner.engine import RunnerOutcome
from repro.runner.taskspec import (
    TaskSpec,
    chaos_spec,
    comparison_spec,
    fingerprint_of,
    selftest_spec,
)
from repro.runner.telemetry import RunnerReport

#: Terminal job states (``queued`` / ``running`` are the live ones).
TERMINAL_STATES = ("done", "failed", "interrupted")

#: Hard ceiling on cells per submitted job — a typo'd seed list must not
#: enqueue a month of simulation.
MAX_CELLS = 10_000


def specs_from_payload(payload: Mapping[str, Any]) -> List[TaskSpec]:
    """Build the grid's TaskSpecs from a submitted JSON payload.

    Three shapes are accepted:

    - ``{"cells": [{"kind": ..., "params": ..., "label": ...}, ...]}`` —
      raw serialised TaskSpecs (the power-user escape hatch);
    - ``{"grid": "comparison", "variants": [...], "channels": [...],
      "seeds": [...], "schedule": {...}}`` — the comparison matrix;
    - ``{"grid": "chaos", "variants": [...], "scenario": ...,
      "intensities": [...], "seeds": [...], "schedule": {...}}``;
    - ``{"grid": "selftest", "cells": N, "sleep_s": ..., "payload": ...}``
      — cheap deterministic cells for smoke tests and canaries.

    Raises ``ValueError`` with a client-presentable message on anything
    malformed — the service maps that to HTTP 400.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("spec payload must be a JSON object")
    if "cells" in payload and "grid" not in payload:
        raw = payload["cells"]
        if not isinstance(raw, list) or not raw:
            raise ValueError('"cells" must be a non-empty list of task specs')
        specs = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise ValueError(f'cells[{index}] is not a task spec object')
            try:
                specs.append(TaskSpec.from_dict(entry))
            except (KeyError, TypeError) as exc:
                raise ValueError(f"cells[{index}]: {exc}") from None
        _check_size(specs)
        return specs

    grid = payload.get("grid")
    schedule = payload.get("schedule", {})
    if not isinstance(schedule, Mapping):
        raise ValueError('"schedule" must be a JSON object')
    try:
        if grid == "comparison":
            specs = [
                comparison_spec(
                    str(variant),
                    zigbee_channel=int(channel),
                    seed=int(seed),
                    **schedule,
                )
                for channel in payload.get("channels", [26])
                for variant in payload.get("variants", ["tele"])
                for seed in payload.get("seeds", [1])
            ]
        elif grid == "chaos":
            specs = [
                chaos_spec(
                    str(variant),
                    scenario=str(payload.get("scenario", "mixed")),
                    intensity=float(intensity),
                    seed=int(seed),
                    zigbee_channel=int(payload.get("zigbee_channel", 26)),
                    **schedule,
                )
                for variant in payload.get("variants", ["tele"])
                for intensity in payload.get("intensities", [0.5])
                for seed in payload.get("seeds", [1])
            ]
        elif grid == "selftest":
            count = int(payload.get("cells", 4))
            if count < 1:
                raise ValueError('"cells" must be >= 1')
            specs = [
                selftest_spec(
                    index,
                    sleep_s=float(payload.get("sleep_s", 0.0)),
                    payload=int(payload.get("payload", 0)),
                )
                for index in range(count)
            ]
        else:
            raise ValueError(
                f"unknown grid {grid!r}; choose comparison, chaos, or "
                'selftest — or submit raw "cells"'
            )
    except (TypeError, KeyError) as exc:
        raise ValueError(f"malformed {grid} grid: {exc}") from None
    if not specs:
        raise ValueError("the payload describes an empty grid")
    _check_size(specs)
    return specs


def _check_size(specs: List[TaskSpec]) -> None:
    if len(specs) > MAX_CELLS:
        raise ValueError(
            f"grid has {len(specs)} cells; the service caps jobs at "
            f"{MAX_CELLS}"
        )


def grid_id(specs: List[TaskSpec]) -> str:
    """Content hash of the ordered cell fingerprints (the job family)."""
    return fingerprint_of([spec.fingerprint for spec in specs])


class Job:
    """One submitted grid and everything known about its execution."""

    def __init__(self, job_id: str, grid: str, specs: List[TaskSpec]) -> None:
        self.id = job_id
        self.grid = grid
        self.specs = specs
        self.state = "queued"
        self.created = time.time()
        self.finished: Optional[float] = None
        self.error: Optional[str] = None
        #: spec-order cell progress, updated live from runner events.
        self.cells: List[Dict[str, Any]] = [
            {
                "label": spec.name,
                "kind": spec.kind,
                "fingerprint": spec.fingerprint,
                "status": "pending",
            }
            for spec in specs
        ]
        self._by_label = {cell["label"]: cell for cell in self.cells}
        self.counters: Optional[Dict[str, Any]] = None
        #: result payloads in spec order (None for unsettled/failed cells).
        self.results: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        #: monotonically growing progress event log (SSE replays it).
        self.events: List[Dict[str, Any]] = []

    def summary(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for cell in self.cells:
            by_status[cell["status"]] = by_status.get(cell["status"], 0) + 1
        return {
            "id": self.id,
            "grid": self.grid,
            "state": self.state,
            "created": self.created,
            "finished": self.finished,
            "cells": len(self.cells),
            "cell_status": by_status,
            "counters": self.counters,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["cell_detail"] = self.cells
        return payload


class JobStore:
    """Thread-safe registry of jobs, their events, and their results."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._sequence = 0
        self._cond = threading.Condition()

    # ------------------------------------------------------------ lifecycle
    def submit(self, payload: Mapping[str, Any]) -> Job:
        """Create a job from a payload (ValueError on malformed specs)."""
        specs = specs_from_payload(payload)
        grid = grid_id(specs)
        with self._cond:
            self._sequence += 1
            job = Job(f"{grid[:16]}-{self._sequence}", grid, specs)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._cond.notify_all()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._cond:
            return [self._jobs[job_id] for job_id in self._order]

    def siblings(self, job: Job) -> List[Job]:
        """Previously submitted jobs with the identical grid fingerprint."""
        with self._cond:
            return [
                other
                for other in (self._jobs[j] for j in self._order)
                if other.grid == job.grid and other.id != job.id
            ]

    # -------------------------------------------------------------- updates
    def mark_running(self, job: Job) -> None:
        with self._cond:
            job.state = "running"
            self._append_event(job, "job", "running", {})

    def progress_sink(self, job: Job):
        """A runner/cache progress sink bound to this job.

        Matches the ``(category, message, **data)`` signature, so it plugs
        straight into :class:`~repro.runner.ParallelRunner` — every engine
        emission becomes a streamed job event, and per-cell status flips
        are derived from the engine's own vocabulary.
        """

        def sink(category: str, message: str, **data: Any) -> None:
            with self._cond:
                label = data.get("cell")
                cell = self._by_label(job, label) if label else None
                if cell is not None:
                    verb = message.split(" ", 1)[0]
                    if verb == "run":
                        cell["status"] = "running"
                        cell["attempt"] = data.get("attempt", 0)
                    elif verb == "retry":
                        cell["status"] = "retrying"
                        cell["attempt"] = data.get("attempt")
                    elif verb in ("done", "cached", "journal"):
                        cell["status"] = (
                            "executed" if verb == "done" else verb
                        )
                        if "wall_s" in data:
                            cell["wall_s"] = round(data["wall_s"], 3)
                    elif verb in ("failed", "quarantined"):
                        cell["status"] = "failed"
                self._append_event(job, category, message, data)

        return sink

    @staticmethod
    def _by_label(job: Job, label: Any) -> Optional[Dict[str, Any]]:
        return job._by_label.get(label)

    def finish(
        self,
        job: Job,
        report: Optional[RunnerReport],
        outcomes: Optional[List[RunnerOutcome]],
        error: Optional[str] = None,
    ) -> None:
        """Record the terminal state, telemetry, and result payloads."""
        with self._cond:
            if error is not None:
                job.state = "failed"
                job.error = error
            elif report is not None and report.interrupted:
                job.state = "interrupted"
            elif report is not None and report.failed:
                job.state = "failed"
            else:
                job.state = "done"
            job.finished = time.time()
            if report is not None:
                job.counters = report.counters()
                for cell, telemetry in zip(job.cells, report.cells):
                    cell["status"] = telemetry.status
                    cell["attempts"] = telemetry.attempts
                    cell["wall_s"] = round(telemetry.wall_s, 3)
                    if telemetry.error:
                        cell["error"] = telemetry.error
            if outcomes is not None:
                job.results = [outcome.result for outcome in outcomes]
            self._append_event(
                job, "job", job.state, {"counters": job.counters}
            )

    def _append_event(
        self, job: Job, category: str, message: str, data: Mapping[str, Any]
    ) -> None:
        # Caller holds the condition.
        job.events.append(
            {
                "seq": len(job.events),
                "t": time.time(),
                "category": category,
                "message": message,
                "data": dict(data),
            }
        )
        self._cond.notify_all()

    # ------------------------------------------------------------ streaming
    def events_after(
        self, job: Job, after: int, timeout: float = 1.0
    ) -> List[Dict[str, Any]]:
        """Events with ``seq > after``, blocking up to ``timeout`` for more.

        Returns immediately once events exist past the cursor (or the job
        reached a terminal state — the stream's natural end).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                fresh = [e for e in job.events if e["seq"] > after]
                if fresh or job.state in TERMINAL_STATES:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def counts(self) -> Dict[str, int]:
        with self._cond:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            by_state["total"] = len(self._jobs)
            return by_state

    def pending_count(self) -> int:
        """Jobs not yet terminal (queued + running): the admission gauge."""
        with self._cond:
            return sum(
                1
                for job in self._jobs.values()
                if job.state not in TERMINAL_STATES
            )
