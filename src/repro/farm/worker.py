"""The farm worker loop: lease cells, run them, install results.

``python -m repro farm worker --queue-dir Q`` attaches the calling process
to a grid; any number of workers — across processes and hosts sharing the
queue directory — drain it cooperatively. Execution goes through the very
same :func:`repro.runner.execute.run_task` as the in-process and pool
executors, so a cell's result is bit-identical no matter who ran it.

Failure semantics (the engine's, expressed through the queue):

- a transient exception retries *in place* with the policy's seeded
  backoff, renewing the lease between attempts, until the cell's total
  budget (lease steals + local retries) runs out;
- a deterministic exception (:data:`repro.runner.retry.DETERMINISTIC_ERRORS`)
  installs a terminal ``failed`` marker immediately;
- a worker that dies or hangs simply stops renewing: the lease expires
  and the next claimer steals the cell, charging one attempt — after
  ``max_attempts`` dead leases the cell is quarantined as poison.

A shared :class:`~repro.runner.cache.ResultCache` doubles as cross-grid
dedup: a worker checks the cache before simulating, so a cell some other
grid (or a previous submission) already computed is answered in
milliseconds and still installs its ``done`` marker.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.farm.queue import Lease, LeaseQueue, default_worker_id
from repro.havoc import proc as havocproc
from repro.runner.cache import ResultCache
from repro.runner.execute import run_task
from repro.runner.retry import RetryPolicy

ProgressSink = Callable[..., None]

#: Consecutive storage failures before a worker concludes the disk is
#: gone for good and aborts cleanly instead of spinning on ENOSPC.
MAX_CONSECUTIVE_IO_ERRORS = 5


@dataclass
class WorkerStats:
    """What one worker loop did, for telemetry and exit reporting."""

    worker: str = ""
    claimed: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    #: Cells abandoned because the lease was stolen mid-run (we froze).
    lost: int = 0
    retries: int = 0
    #: Storage failures installing markers/results (disk full, EIO): the
    #: cell's lease was released for someone (or a later pass) to redo.
    io_errors: int = 0
    #: True when the loop aborted on persistent storage failure.
    aborted: bool = False
    wall_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "claimed": self.claimed,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "lost": self.lost,
            "retries": self.retries,
            "io_errors": self.io_errors,
            "aborted": self.aborted,
            "wall_s": round(self.wall_s, 3),
        }


class _LeaseKeeper(threading.Thread):
    """Daemon thread renewing one lease at ``ttl/4`` while a cell runs.

    The queue-side analogue of the engine's heartbeat writer: as long as
    the worker process is alive (even mid-simulation), the lease never
    expires; the moment it dies, renewals stop and the TTL takes over.
    Sets ``lost`` when a renewal discovers the lease was stolen.
    """

    def __init__(self, queue: LeaseQueue, lease: Lease) -> None:
        super().__init__(name="repro-lease-keeper", daemon=True)
        self.queue = queue
        self.lease = lease
        self.lost = threading.Event()
        self._stopped = threading.Event()

    def run(self) -> None:
        interval = max(self.queue.lease_ttl / 4.0, 0.05)
        while not self._stopped.wait(interval):
            try:
                if not self.queue.renew(self.lease):
                    self.lost.set()
                    return
            except OSError:  # transient fs hiccup; the TTL still covers us
                pass

    def stop(self) -> None:
        self._stopped.set()


def run_leased_cell(
    queue: LeaseQueue,
    lease: Lease,
    cache: Optional[ResultCache],
    policy: RetryPolicy,
    stats: WorkerStats,
    progress: Optional[ProgressSink] = None,
) -> None:
    """Drive one claimed cell to a terminal marker (or abandon it if stolen).

    The cell's total attempt budget is shared between lease steals (already
    charged in ``lease.attempt``) and local transient retries, so a cell
    cannot consume more than ``policy.max_attempts`` tries farm-wide.
    """

    def emit(message: str, **data: Any) -> None:
        if progress is not None:
            progress("farm", message, **data)

    def install(kind: str, action: Callable[[], None]) -> bool:
        """Install a terminal marker, degrading on storage failure.

        A failed install (disk full, EIO) releases the lease so the cell
        re-runs — on this worker once the fault clears, or on any other
        claimer. The half-computed state never becomes a torn or
        duplicate result; it simply never becomes a result at all.
        """
        try:
            action()
            return True
        except OSError as exc:
            stats.io_errors += 1
            emit(
                f"storage failure installing {kind} marker for {lease.name} "
                f"(releasing lease): {exc}",
                cell=lease.name,
                error=repr(exc),
            )
            try:
                queue.release(lease)
            except OSError:
                pass  # the TTL reclaims it
            return False

    keeper = _LeaseKeeper(queue, lease)
    keeper.start()
    started = time.perf_counter()
    attempt = lease.attempt
    try:
        if cache is not None:
            hit = cache.load(lease.spec)
            if hit is not None:
                if install(
                    "done",
                    lambda: queue.complete(
                        lease,
                        {"result": hit, "wall_s": 0.0, "events": None},
                        source="cached",
                    ),
                ):
                    stats.cached += 1
                    emit(f"cached {lease.name}", cell=lease.name, status="cached")
                return
        while True:
            if keeper.lost.is_set():
                stats.lost += 1
                emit(f"lost lease on {lease.name} (stolen)", cell=lease.name)
                return
            emit(f"run {lease.name}", cell=lease.name, attempt=attempt)
            try:
                reply = run_task(
                    {"spec": lease.spec.to_dict(), "attempt": attempt},
                    in_process=True,
                )
            except Exception as exc:
                error = repr(exc)
                deterministic = policy.classify(exc) == "deterministic"
                if deterministic or attempt + 1 >= policy.max_attempts:
                    if install(
                        "failed",
                        lambda: queue.fail(
                            lease, error, kind="error", attempts=attempt + 1
                        ),
                    ):
                        stats.failed += 1
                        emit(
                            f"failed {lease.name}: {error}",
                            cell=lease.name,
                            status="failed",
                        )
                    return
                delay = policy.delay(lease.fingerprint, attempt)
                stats.retries += 1
                emit(
                    f"retry {lease.name}: {error}",
                    cell=lease.name,
                    attempt=attempt + 1,
                    delay_s=delay,
                )
                attempt += 1
                lease.attempt = attempt  # renewals carry the charge forward
                time.sleep(delay)
                continue
            if cache is not None:
                try:
                    cache.store(lease.spec, reply["result"])
                except OSError as exc:
                    # Cache is an optimisation: a full disk degrades the
                    # next run to re-execution, never this cell's result.
                    emit(
                        f"cache store failed for {lease.name} (degrading): {exc}",
                        cell=lease.name,
                        error=repr(exc),
                    )
            if install("done", lambda: queue.complete(lease, reply)):
                stats.executed += 1
                emit(
                    f"done {lease.name}", cell=lease.name, wall_s=reply["wall_s"]
                )
            return
    finally:
        keeper.stop()
        stats.wall_s += time.perf_counter() - started
        havocproc.checkpoint("cell_done", lease.name)


def drain_queue(
    queue_dir: Union[str, Path],
    cache_dir: Optional[Union[str, Path]] = None,
    worker_id: Optional[str] = None,
    lease_ttl: float = 15.0,
    policy: Optional[RetryPolicy] = None,
    follow: bool = False,
    poll_s: float = 0.2,
    max_cells: Optional[int] = None,
    progress: Optional[ProgressSink] = None,
    stop: Optional[threading.Event] = None,
) -> WorkerStats:
    """The worker main loop: claim → run → repeat until the grid is drained.

    ``follow=True`` keeps polling for new work after the queue empties
    (a long-lived worker attached to a farm service); otherwise the loop
    exits once every enqueued cell has a terminal marker. ``stop`` (an
    optional :class:`threading.Event`) requests a graceful exit between
    cells — in-flight work finishes, its lease never goes stale.
    """
    policy = policy if policy is not None else RetryPolicy()
    queue = LeaseQueue(
        queue_dir,
        lease_ttl=lease_ttl,
        max_attempts=policy.max_attempts,
        worker_id=worker_id or default_worker_id(),
    )
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    stats = WorkerStats(worker=queue.worker_id)
    consecutive_io = 0

    def emit(message: str, **data: Any) -> None:
        if progress is not None:
            progress("farm", message, **data)

    emit(f"worker {queue.worker_id} attached to {queue.root}")
    while True:
        if stop is not None and stop.is_set():
            break
        if max_cells is not None and stats.claimed >= max_cells:
            break
        io_errors_before = stats.io_errors
        try:
            lease = queue.claim()
        except OSError as exc:  # queue root unreadable/unwritable
            stats.io_errors += 1
            emit(f"claim failed (storage): {exc}", error=repr(exc))
            lease = None
        if lease is None:
            if stats.io_errors - io_errors_before >= 1:
                consecutive_io += 1
                if consecutive_io >= MAX_CONSECUTIVE_IO_ERRORS:
                    stats.aborted = True
                    emit(
                        f"aborting after {consecutive_io} consecutive "
                        "storage failures (disk full or gone?)",
                        io_errors=stats.io_errors,
                    )
                    break
            if queue.unfinished() == 0 and not follow:
                break  # grid drained
            # Open cells are all held by live leases (or none exist yet).
            if stop is not None:
                if stop.wait(poll_s):
                    break
            else:
                time.sleep(poll_s)
            continue
        stats.claimed += 1
        havocproc.checkpoint("claimed", lease.name)
        run_leased_cell(queue, lease, cache, policy, stats, progress)
        if stats.io_errors > io_errors_before:
            consecutive_io += 1
            if consecutive_io >= MAX_CONSECUTIVE_IO_ERRORS:
                stats.aborted = True
                emit(
                    f"aborting after {consecutive_io} consecutive storage "
                    "failures (disk full or gone?)",
                    io_errors=stats.io_errors,
                )
                break
            # Back off before re-claiming: a transient ENOSPC window (logs
            # being rotated, another job cleaning up) often clears.
            time.sleep(min(poll_s * (2 ** consecutive_io), 2.0))
        else:
            consecutive_io = 0
    emit(f"worker {queue.worker_id} detached", **stats.to_dict())
    return stats
