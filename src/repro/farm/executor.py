"""``QueueExecutor``: drain a grid through the shared lease queue.

The scheduler side of the farm. :class:`repro.runner.ParallelRunner` hands
its pending cells over; the executor enqueues them onto a
:class:`~repro.farm.queue.LeaseQueue`, optionally spawns local worker
subprocesses and/or drains cells itself, and folds terminal markers —
whoever installed them, on whatever host — back into the scheduler's
outcome/journal/cache/telemetry machinery.

The shared :class:`~repro.runner.cache.ResultCache` and the run journal
are the dedup/rendezvous layer: the scheduler's cache pass already
answered warm cells before the queue ever sees them, the journal records
every completion durably (a SIGKILLed *scheduler* resumes normally), and
a SIGKILLed *worker*'s leased cells are re-leased after the TTL with the
engine's usual retry/quarantine accounting.

Interrupts follow the engine contract: on the first signal the executor
stops claiming and returns — unfinished cells journal as ``interrupted``,
and because tasks and markers persist in the queue directory, a resumed
run re-attaches to the half-drained queue and keeps whatever external
workers finished in the meantime.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Union

from repro.farm.queue import LeaseQueue, default_worker_id
from repro.farm.worker import WorkerStats, run_leased_cell
from repro.runner.executors import Cell, CellExecutor
from repro.runner.journal import RunJournal

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.engine import ParallelRunner


class QueueExecutor(CellExecutor):
    """Lease-queue execution — many processes/hosts drain one grid.

    ``workers`` local worker subprocesses are spawned for the duration of
    the drain (0 = rely on external workers); ``self_drain=True`` (the
    default) lets the scheduler process claim cells between polls, so a
    grid always completes even with zero attached workers. Lease expiry
    (``lease_ttl``) replaces the pool executor's watchdog: a dead or hung
    worker's cell is stolen after the TTL, charging its retry budget, and
    quarantined as poison when the budget runs out.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: Union[str, Path],
        workers: int = 0,
        self_drain: bool = True,
        lease_ttl: float = 15.0,
        poll_s: float = 0.05,
        worker_id: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0 seconds")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.self_drain = self_drain
        self.lease_ttl = lease_ttl
        self.poll_s = poll_s
        self.worker_id = worker_id or f"scheduler-{default_worker_id()}"
        #: Stats of the scheduler's own self-drained cells (telemetry).
        self.stats = WorkerStats(worker=self.worker_id)

    @property
    def slots(self) -> int:
        return self.workers + (1 if self.self_drain else 0)

    # ------------------------------------------------------------- workers
    def _spawn_workers(
        self, scheduler: "ParallelRunner"
    ) -> List["subprocess.Popen[bytes]"]:
        processes: List["subprocess.Popen[bytes]"] = []
        for index in range(self.workers):
            argv = [
                sys.executable, "-m", "repro", "farm", "worker",
                "--queue-dir", str(self.queue_dir),
                "--lease-ttl", str(self.lease_ttl),
                "--retries", str(scheduler.policy.retries),
                "--worker-id", f"{self.worker_id}-w{index}",
                "--quiet",
            ]
            if scheduler.cache is not None:
                argv += ["--cache-dir", str(scheduler.cache.root)]
            processes.append(subprocess.Popen(argv))
        return processes

    @staticmethod
    def _reap_workers(processes: List["subprocess.Popen[bytes]"]) -> None:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)

    # ------------------------------------------------------------ settling
    def _settle(
        self,
        scheduler: "ParallelRunner",
        cell: Cell,
        marker: Dict[str, Any],
        outcomes: List[Any],
        journal: Optional[RunJournal],
    ) -> None:
        """Fold one terminal marker into the scheduler's bookkeeping."""
        from repro.runner.engine import RunnerOutcome

        attempts = max(int(marker.get("attempts", 1)), 1)
        if marker["terminal"] == "done":
            cell.attempt = attempts - 1
            reply = {
                "result": marker["result"],
                "wall_s": float(marker.get("wall_s", 0.0)),
                "events": marker.get("events"),
            }
            scheduler._finalize(outcomes, cell, reply, journal)
            return
        quarantined = bool(marker.get("quarantined", False))
        error = str(marker.get("error") or "cell failed on a farm worker")
        error += f" [worker {marker.get('worker', '?')}]"
        outcomes[cell.index] = RunnerOutcome(
            cell.spec,
            None,
            "failed",
            attempts=attempts,
            error=error,
            requeues=cell.requeues,
            quarantined=quarantined,
        )
        scheduler._journal(
            journal,
            "quarantine" if quarantined else "failed",
            cell=cell.spec.fingerprint,
            index=cell.index,
            attempts=attempts,
            kind=str(marker.get("kind", "error")),
            error=error,
        )
        scheduler._emit(
            f"failed {cell.spec.name}: {error}",
            cell=cell.spec.name,
            status="failed",
            quarantined=quarantined,
        )

    # ---------------------------------------------------------------- drain
    def drain(
        self,
        scheduler: "ParallelRunner",
        pending: Deque[Cell],
        outcomes: List[Any],
        journal: Optional[RunJournal],
    ) -> None:
        queue = LeaseQueue(
            self.queue_dir,
            lease_ttl=self.lease_ttl,
            max_attempts=scheduler.policy.max_attempts,
            worker_id=self.worker_id,
        )
        cells = {cell.spec.fingerprint: cell for cell in pending}
        order = [cell.spec.fingerprint for cell in pending]
        pending.clear()  # the queue owns scheduling from here
        for seq, fingerprint in enumerate(order):
            cell = cells[fingerprint]
            if queue.put(cell.spec, seq):
                scheduler._journal(
                    journal,
                    "dispatch",
                    cell=fingerprint,
                    index=cell.index,
                    attempt=0,
                )
        scheduler._emit(
            f"enqueued {len(order)} cell(s) onto {queue.root} "
            f"(workers={self.workers}, self_drain={self.self_drain})",
            **queue.snapshot(),
        )
        if not self.self_drain and self.workers == 0:
            scheduler._emit(
                "waiting for external workers "
                f"(`python -m repro farm worker --queue-dir {queue.root}`)"
            )

        processes = self._spawn_workers(scheduler)
        unresolved = set(order)
        try:
            while unresolved:
                if scheduler._interrupts:
                    return  # unfinished cells journal as interrupted
                progressed = False
                for fingerprint in sorted(
                    unresolved, key=lambda f: cells[f].index
                ):
                    marker = queue.outcome_for(fingerprint)
                    if marker is None:
                        continue
                    self._settle(
                        scheduler, cells[fingerprint], marker, outcomes, journal
                    )
                    unresolved.discard(fingerprint)
                    progressed = True
                if progressed or not unresolved:
                    continue
                if self.self_drain:
                    lease = queue.claim()
                    if lease is not None:
                        # The scheduler doubles as a worker: same execution
                        # path, no shared-cache double-store (the marker
                        # settles through _finalize, which stores).
                        run_leased_cell(
                            queue,
                            lease,
                            cache=None,
                            policy=scheduler.policy,
                            stats=self.stats,
                            progress=scheduler.progress,
                        )
                        continue
                time.sleep(self.poll_s)
        finally:
            self._reap_workers(processes)
