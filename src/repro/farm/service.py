"""Results as a service: the farm's asyncio HTTP front end.

``python -m repro serve`` starts a single-process server (stdlib asyncio,
no third-party dependencies) that accepts experiment specs as JSON,
executes them through the shared :class:`~repro.runner.ParallelRunner`
machinery, and serves progress and results back over HTTP:

- ``GET  /healthz`` — liveness + job counts;
- ``POST /jobs`` — submit a spec payload (see
  :func:`repro.farm.jobs.specs_from_payload`); returns ``202`` with the
  job id;
- ``GET  /jobs`` — job summaries, newest last;
- ``GET  /jobs/<id>`` — full status with per-cell detail;
- ``GET  /jobs/<id>/results`` — result payloads in spec order (404 until
  submitted; results stream in as cells settle);
- ``GET  /jobs/<id>/events`` — Server-Sent Events: the job's progress log
  replayed from ``Last-Event-ID`` (or ``?after=<seq>``) and followed live
  until the job reaches a terminal state.

Jobs run one at a time on a dedicated executor thread (the farm queue
underneath fans cells out to workers); the shared result cache makes an
identical resubmission settle entirely from cache — ``cached == cells``,
zero re-executions — which is the service's core promise.

SIGTERM/SIGINT shut the server down cleanly: stop accepting, let the
in-flight job finish (its cache/journal writes are durable anyway), close
event streams, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.farm.jobs import TERMINAL_STATES, Job, JobStore
from repro.runner.engine import ParallelRunner
from repro.version import __version__

#: Submitted payloads above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

RunnerFactory = Callable[[Job], ParallelRunner]


class FarmService:
    """The HTTP front end over a :class:`~repro.farm.jobs.JobStore`.

    ``runner_factory`` builds a fresh runner per job (so journal/executor
    state never leaks between jobs) — typically a closure over a shared
    :class:`~repro.runner.cache.ResultCache`, which is what turns
    identical resubmissions into pure cache reads.
    """

    def __init__(
        self,
        runner_factory: RunnerFactory,
        host: str = "127.0.0.1",
        port: int = 8642,
        store: Optional[JobStore] = None,
    ) -> None:
        self.store = store if store is not None else JobStore()
        self.runner_factory = runner_factory
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()
        #: One job at a time: the queue executor underneath provides the
        #: parallelism; serialising jobs keeps cache/journal contention
        #: trivial to reason about.
        self._job_lock = asyncio.Lock()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_stop(self) -> None:
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (usually a signal handler)."""
        assert self._server is not None, "start() first"
        async with self._server:
            await self._stopping.wait()
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------- job execution
    async def _execute(self, job: Job) -> None:
        async with self._job_lock:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._run_job, job)

    def _run_job(self, job: Job) -> None:
        # Runs on an executor thread; everything it touches is the
        # thread-safe JobStore and a job-private runner.
        self.store.mark_running(job)
        try:
            runner = self.runner_factory(job)
            runner.progress = self.store.progress_sink(job)
            if runner.cache is not None:
                runner.cache.progress = runner.progress
            outcomes = runner.run(job.specs)
        except Exception as exc:  # defensive: a crashed job must not
            self.store.finish(job, None, None, error=repr(exc))  # kill serve
            return
        self.store.finish(job, runner.last_report, outcomes)

    # ---------------------------------------------------------------- http
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = await self._dispatch(
                    writer, method, target, headers, body
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, target, headers, b"\x00"  # sentinel: too large
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> bool:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        if body == b"\x00":
            await self._send_json(
                writer, 413, {"error": "body exceeds MAX_BODY_BYTES"}
            )
            return False

        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"ok": True, "version": __version__, "jobs": self.store.counts()},
            )
            return True
        if path == "/jobs" and method == "POST":
            return await self._submit(writer, body)
        if path == "/jobs" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"jobs": [job.summary() for job in self.store.jobs()]},
            )
            return True
        if path.startswith("/jobs/"):
            tail = path[len("/jobs/"):].split("/")
            job = self.store.get(tail[0])
            if job is None:
                await self._send_json(
                    writer, 404, {"error": f"no such job {tail[0]!r}"}
                )
                return True
            if len(tail) == 1 and method == "GET":
                await self._send_json(writer, 200, job.to_dict())
                return True
            if tail[1:] == ["results"] and method == "GET":
                await self._send_json(
                    writer,
                    200,
                    {
                        "id": job.id,
                        "state": job.state,
                        "counters": job.counters,
                        "results": job.results,
                    },
                )
                return True
            if tail[1:] == ["events"] and method == "GET":
                raw_after = headers.get(
                    "last-event-id", query.get("after", ["-1"])[0]
                )
                try:
                    after = int(raw_after)
                except ValueError:
                    await self._send_json(
                        writer, 400, {"error": f"bad cursor {raw_after!r}"}
                    )
                    return True
                await self._stream_events(writer, job, after)
                return False  # SSE consumes the connection
        await self._send_json(
            writer, 404 if method == "GET" else 405,
            {"error": f"cannot {method} {path}"},
        )
        return True

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> bool:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._send_json(writer, 400, {"error": f"bad JSON: {exc}"})
            return True
        try:
            job = self.store.submit(payload)
        except ValueError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return True
        asyncio.get_running_loop().create_task(self._execute(job))
        await self._send_json(writer, 202, {"job": job.summary()})
        return True

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job, after: int
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        cursor = after
        while True:
            events = await loop.run_in_executor(
                None, self.store.events_after, job, cursor, 0.5
            )
            for event in events:
                cursor = event["seq"]
                frame = (
                    f"id: {event['seq']}\n"
                    f"event: {event['category']}\n"
                    f"data: {json.dumps(event, sort_keys=True)}\n\n"
                )
                writer.write(frame.encode("utf-8"))
            if events:
                await writer.drain()
            if not events and job.state in TERMINAL_STATES:
                writer.write(b"event: end\ndata: {}\n\n")
                await writer.drain()
                return
            if self._stopping.is_set():
                return

    @staticmethod
    async def _send_json(
        writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        ).encode("latin-1")
        writer.write(head + b"\r\n" + body)
        await writer.drain()


async def _amain(service: FarmService, announce: bool) -> int:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platforms without signal support
    await service.start()
    if announce:
        print(f"repro farm service listening on {service.address}", flush=True)
    await service.serve_until_stopped()
    if announce:
        print("repro farm service stopped", flush=True)
    return 0


def run_service(
    runner_factory: RunnerFactory,
    host: str = "127.0.0.1",
    port: int = 8642,
    announce: bool = True,
) -> int:
    """Blocking entry point for ``python -m repro serve``; returns 0."""
    service = FarmService(runner_factory, host=host, port=port)
    try:
        return asyncio.run(_amain(service, announce))
    except KeyboardInterrupt:  # pragma: no cover — belt and braces
        return 0


__all__ = ["FarmService", "MAX_BODY_BYTES", "run_service"]


if __name__ == "__main__":  # pragma: no cover
    from repro.runner import ParallelRunner as _Runner

    raise SystemExit(
        run_service(lambda job: _Runner(jobs=1), announce=True)
    )
