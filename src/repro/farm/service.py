"""Results as a service: the farm's asyncio HTTP front end.

``python -m repro serve`` starts a single-process server (stdlib asyncio,
no third-party dependencies) that accepts experiment specs as JSON,
executes them through the shared :class:`~repro.runner.ParallelRunner`
machinery, and serves progress and results back over HTTP:

- ``GET  /healthz`` — liveness + job counts;
- ``POST /jobs`` — submit a spec payload (see
  :func:`repro.farm.jobs.specs_from_payload`); returns ``202`` with the
  job id;
- ``GET  /jobs`` — job summaries, newest last;
- ``GET  /jobs/<id>`` — full status with per-cell detail;
- ``GET  /jobs/<id>/results`` — result payloads in spec order (404 until
  submitted; results stream in as cells settle);
- ``GET  /jobs/<id>/events`` — Server-Sent Events: the job's progress log
  replayed from ``Last-Event-ID`` (or ``?after=<seq>``) and followed live
  until the job reaches a terminal state.

Jobs run one at a time on a dedicated executor thread (the farm queue
underneath fans cells out to workers); the shared result cache makes an
identical resubmission settle entirely from cache — ``cached == cells``,
zero re-executions — which is the service's core promise.

The service is hardened for hostile conditions (exercised by
``tests/test_farm_hostile.py`` and the havoc soak):

- **admission control** — at most ``max_pending`` jobs may be queued or
  running; submissions beyond the bound get ``429`` with ``Retry-After``
  (the resilient client backs off and retries), and ``/healthz`` reports
  ``degraded`` while saturated instead of waiting to fall over;
- **read timeouts** — a client that stalls mid-request (slowloris, a
  wedged uploader) gets ``408`` and its connection closed after
  ``read_timeout`` seconds; it never pins a handler;
- **malformed input is a 4xx, never a 500** — unparseable request lines,
  lying ``Content-Length`` headers, oversized bodies, bad JSON, and
  unknown routes all get their proper 4xx, and an unexpected handler
  exception answers 500 *for that connection only* — the event loop and
  every other stream keep running;
- **graceful drain** — SIGTERM/SIGINT stop accepting, reject new
  submissions with ``503`` + ``Retry-After``, let the in-flight job run
  to completion (leased cells finish; their cache/journal writes are
  durable), close event streams, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Callable, Dict, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.farm.jobs import TERMINAL_STATES, Job, JobStore
from repro.havoc import http as havochttp
from repro.runner.engine import ParallelRunner
from repro.version import __version__

#: Submitted payloads above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Default bound on queued + running jobs (admission control).
DEFAULT_MAX_PENDING = 32

#: Default seconds a client may stall mid-request before 408 + close.
DEFAULT_READ_TIMEOUT = 10.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

RunnerFactory = Callable[[Job], ParallelRunner]


class _BadRequest(Exception):
    """An unservable request: mapped to its 4xx and a closed connection."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class FarmService:
    """The HTTP front end over a :class:`~repro.farm.jobs.JobStore`.

    ``runner_factory`` builds a fresh runner per job (so journal/executor
    state never leaks between jobs) — typically a closure over a shared
    :class:`~repro.runner.cache.ResultCache`, which is what turns
    identical resubmissions into pure cache reads.
    """

    def __init__(
        self,
        runner_factory: RunnerFactory,
        host: str = "127.0.0.1",
        port: int = 8642,
        store: Optional[JobStore] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if read_timeout <= 0:
            raise ValueError("read_timeout must be > 0 seconds")
        self.store = store if store is not None else JobStore()
        self.runner_factory = runner_factory
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.read_timeout = read_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()
        #: One job at a time: the queue executor underneath provides the
        #: parallelism; serialising jobs keeps cache/journal contention
        #: trivial to reason about.
        self._job_lock = asyncio.Lock()
        #: Live job-execution tasks — awaited during graceful drain.
        self._tasks: Set["asyncio.Task[None]"] = set()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_stop(self) -> None:
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (usually a signal handler).

        Stopping is a *drain*: the listener closes first (no new
        connections, new submissions answered 503 on the ones still
        open), then in-flight jobs are awaited to completion — their
        leased cells finish and their journal/cache writes land — before
        the coroutine returns and the process exits 0.
        """
        assert self._server is not None, "start() first"
        async with self._server:
            await self._stopping.wait()
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)

    # ------------------------------------------------------- job execution
    async def _execute(self, job: Job) -> None:
        async with self._job_lock:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._run_job, job)

    def _run_job(self, job: Job) -> None:
        # Runs on an executor thread; everything it touches is the
        # thread-safe JobStore and a job-private runner.
        self.store.mark_running(job)
        try:
            runner = self.runner_factory(job)
            runner.progress = self.store.progress_sink(job)
            if runner.cache is not None:
                runner.cache.progress = runner.progress
            outcomes = runner.run(job.specs)
        except Exception as exc:  # defensive: a crashed job must not
            self.store.finish(job, None, None, error=repr(exc))  # kill serve
            return
        self.store.finish(job, runner.last_report, outcomes)

    # ---------------------------------------------------------------- http
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._send_json(
                        writer, exc.status, {"error": exc.message}
                    )
                    break  # the stream may hold garbage: never reuse it
                if request is None:
                    break
                method, target, headers, body = request
                try:
                    keep_alive = await self._dispatch(
                        writer, method, target, headers, body
                    )
                except _BadRequest as exc:
                    await self._send_json(
                        writer, exc.status, {"error": exc.message}
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    raise
                except Exception as exc:  # never let hostile input kill
                    await self._send_json(  # the event loop
                        writer, 500, {"error": f"internal error: {exc!r}"}
                    )
                    break
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request, policing size, shape, and time.

        Returns None on a clean EOF or an *idle* keep-alive connection
        (closed silently — idling between requests is normal, not a
        stall); raises :class:`_BadRequest` for anything that cannot or
        must not be served — including a client that stalls longer than
        ``read_timeout`` once a request has *started* arriving (408) and
        a header section the stream limit rejects (400).
        """
        try:
            first = await asyncio.wait_for(
                reader.readexactly(1), self.read_timeout
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            return None  # idle between requests, or clean EOF
        try:
            head = first + await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.read_timeout
            )
        except asyncio.TimeoutError:
            raise _BadRequest(
                408, f"request head not received within {self.read_timeout:g}s"
            ) from None
        except asyncio.IncompleteReadError:
            raise _BadRequest(400, "truncated request head") from None
        except asyncio.LimitOverrunError:
            raise _BadRequest(400, "request head too large") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[0].isalpha():
            raise _BadRequest(400, f"malformed request line {lines[0]!r:.120}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(
                400, f"unparseable Content-Length {raw_length!r:.40}"
            ) from None
        if length < 0:
            raise _BadRequest(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        if not length:
            return method, target, headers, b""
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), self.read_timeout
            )
        except asyncio.TimeoutError:
            raise _BadRequest(
                408,
                f"declared body of {length} bytes not received within "
                f"{self.read_timeout:g}s",
            ) from None
        except asyncio.IncompleteReadError:
            raise _BadRequest(400, "connection dropped mid-body") from None
        return method, target, headers, body

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> bool:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)

        if path == "/healthz" and method == "GET":
            pending = self.store.pending_count()
            if self._stopping.is_set():
                state = "draining"
            elif pending >= self.max_pending:
                state = "degraded"
            else:
                state = "ok"
            await self._send_json(
                writer,
                200,
                {
                    "ok": state == "ok",
                    "state": state,
                    "version": __version__,
                    "jobs": self.store.counts(),
                    "pending": pending,
                    "max_pending": self.max_pending,
                },
            )
            return True
        if path == "/jobs" and method == "POST":
            return await self._submit(writer, body)
        if path == "/jobs" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"jobs": [job.summary() for job in self.store.jobs()]},
            )
            return True
        if path.startswith("/jobs/"):
            tail = path[len("/jobs/"):].split("/")
            job = self.store.get(tail[0])
            if job is None:
                await self._send_json(
                    writer, 404, {"error": f"no such job {tail[0]!r}"}
                )
                return True
            if len(tail) == 1 and method == "GET":
                await self._send_json(writer, 200, job.to_dict())
                return True
            if tail[1:] == ["results"] and method == "GET":
                await self._send_json(
                    writer,
                    200,
                    {
                        "id": job.id,
                        "state": job.state,
                        "counters": job.counters,
                        "results": job.results,
                    },
                )
                return True
            if tail[1:] == ["events"] and method == "GET":
                raw_after = headers.get(
                    "last-event-id", query.get("after", ["-1"])[0]
                )
                try:
                    after = int(raw_after)
                except ValueError:
                    await self._send_json(
                        writer, 400, {"error": f"bad cursor {raw_after!r}"}
                    )
                    return True
                await self._stream_events(writer, job, after)
                return False  # SSE consumes the connection
        await self._send_json(
            writer, 404 if method == "GET" else 405,
            {"error": f"cannot {method} {path}"},
        )
        return False  # a lost client; don't hold its connection open

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> bool:
        if self._stopping.is_set():
            await self._send_json(
                writer,
                503,
                {"error": "service is draining; resubmit elsewhere or later"},
                headers={"Retry-After": "5"},
            )
            return False
        pending = self.store.pending_count()
        if pending >= self.max_pending:
            # Shed load *before* parsing or accepting the spec: a saturated
            # server answers fast and cheap, and the resilient client's
            # seeded backoff turns the 429 into a short wait, not an error.
            await self._send_json(
                writer,
                429,
                {
                    "error": (
                        f"{pending} jobs pending >= max_pending="
                        f"{self.max_pending}; retry after backoff"
                    ),
                    "pending": pending,
                    "max_pending": self.max_pending,
                },
                headers={"Retry-After": "1"},
            )
            return True
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._send_json(writer, 400, {"error": f"bad JSON: {exc}"})
            return False
        try:
            job = self.store.submit(payload)
        except ValueError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return False
        task = asyncio.get_running_loop().create_task(self._execute(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        await self._send_json(writer, 202, {"job": job.summary()})
        return True

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job, after: int
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        cursor = after
        while True:
            events = await loop.run_in_executor(
                None, self.store.events_after, job, cursor, 0.5
            )
            for event in events:
                fault = havochttp.stream_fault("events", job.id)
                if fault is not None and fault.kind == "sse_drop":
                    # Havoc: sever the transport mid-stream with no ``end``
                    # frame — the client must reconnect from Last-Event-ID.
                    writer.transport.abort()
                    return
                if fault is not None and fault.kind == "sse_stall":
                    await asyncio.sleep(fault.delay_s)
                cursor = event["seq"]
                frame = (
                    f"id: {event['seq']}\n"
                    f"event: {event['category']}\n"
                    f"data: {json.dumps(event, sort_keys=True)}\n\n"
                )
                writer.write(frame.encode("utf-8"))
            if events:
                await writer.drain()
            if not events and job.state in TERMINAL_STATES:
                writer.write(b"event: end\ndata: {}\n\n")
                await writer.drain()
                return
            if self._stopping.is_set():
                return

    @staticmethod
    async def _send_json(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # the peer already hung up; nothing left to tell them


async def _amain(service: FarmService, announce: bool) -> int:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platforms without signal support
    await service.start()
    if announce:
        print(f"repro farm service listening on {service.address}", flush=True)
    await service.serve_until_stopped()
    if announce:
        print("repro farm service stopped", flush=True)
    return 0


def run_service(
    runner_factory: RunnerFactory,
    host: str = "127.0.0.1",
    port: int = 8642,
    announce: bool = True,
    max_pending: int = DEFAULT_MAX_PENDING,
    read_timeout: float = DEFAULT_READ_TIMEOUT,
) -> int:
    """Blocking entry point for ``python -m repro serve``; returns 0."""
    service = FarmService(
        runner_factory,
        host=host,
        port=port,
        max_pending=max_pending,
        read_timeout=read_timeout,
    )
    try:
        return asyncio.run(_amain(service, announce))
    except KeyboardInterrupt:  # pragma: no cover — belt and braces
        return 0


__all__ = [
    "DEFAULT_MAX_PENDING",
    "DEFAULT_READ_TIMEOUT",
    "FarmService",
    "MAX_BODY_BYTES",
    "run_service",
]


if __name__ == "__main__":  # pragma: no cover
    from repro.runner import ParallelRunner as _Runner

    raise SystemExit(
        run_service(lambda job: _Runner(jobs=1), announce=True)
    )
