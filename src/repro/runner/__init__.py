"""``repro.runner`` — parallel experiment execution with result caching.

The layer between the simulator and every experiment driver above it:

- :class:`TaskSpec` — canonical, hashable description of one cell
  (:func:`comparison_spec`, :func:`wake_interval_spec`,
  :func:`network_size_spec`, :func:`selftest_spec` build them);
- :class:`ResultCache` — content-addressed on-disk JSON cache, invalidated
  by any config change or a ``repro`` version bump;
- :class:`ParallelRunner` — process-pool execution with per-cell timeout,
  bounded retry, crash containment, and deterministic result ordering
  (``jobs=1`` is the bit-identical serial path);
- :class:`RunnerReport` / :class:`CellTelemetry` — cells
  executed/cached/failed, sim-vs-wall time, aggregate throughput.

Usage::

    from repro.runner import ParallelRunner, ResultCache, comparison_spec
    specs = [comparison_spec("tele", seed=s) for s in range(1, 6)]
    runner = ParallelRunner(jobs=4, cache=ResultCache(".repro-cache"))
    outcomes = runner.run(specs)
    print(runner.last_report.summary_table())
"""

from repro.runner.cache import ResultCache
from repro.runner.engine import ParallelRunner, RunnerOutcome
from repro.runner.execute import InjectedFault, execute_spec, run_task
from repro.runner.taskspec import (
    SPEC_SCHEMA,
    TaskSpec,
    canonical_json,
    chaos_spec,
    comparison_spec,
    fingerprint_of,
    network_size_spec,
    selftest_spec,
    wake_interval_spec,
)
from repro.runner.telemetry import CellTelemetry, RunnerReport

__all__ = [
    "SPEC_SCHEMA",
    "CellTelemetry",
    "InjectedFault",
    "ParallelRunner",
    "ResultCache",
    "RunnerOutcome",
    "RunnerReport",
    "TaskSpec",
    "canonical_json",
    "chaos_spec",
    "comparison_spec",
    "execute_spec",
    "fingerprint_of",
    "network_size_spec",
    "run_task",
    "selftest_spec",
    "wake_interval_spec",
]
