"""``repro.runner`` — parallel experiment execution with result caching.

The layer between the simulator and every experiment driver above it:

- :class:`TaskSpec` — canonical, hashable description of one cell
  (:func:`comparison_spec`, :func:`wake_interval_spec`,
  :func:`network_size_spec`, :func:`selftest_spec` build them);
- :class:`ResultCache` — content-addressed on-disk JSON cache, invalidated
  by any config change or a ``repro`` version bump;
- :class:`ParallelRunner` — process-pool execution with per-cell timeout,
  a heartbeat watchdog, bounded retry with seeded backoff
  (:class:`RetryPolicy`), crash containment with honest attribution, and
  deterministic result ordering (``jobs=1`` is the bit-identical serial
  path);
- :class:`RunJournal` — append-only JSONL manifest keyed by the grid
  fingerprint: every dispatch/completion/failure is durably recorded, so a
  grid killed hard resumes exactly where it stopped;
- :class:`RunnerReport` / :class:`CellTelemetry` — cells
  executed/cached/resumed/failed, requeues, backoff totals, the
  quarantined-cell list, sim-vs-wall time, aggregate throughput.

Usage::

    from repro.runner import ParallelRunner, ResultCache, comparison_spec
    specs = [comparison_spec("tele", seed=s) for s in range(1, 6)]
    runner = ParallelRunner(
        jobs=4, cache=ResultCache(".repro-cache"),
        journal_dir=".repro-journal", resume=True,
    )
    outcomes = runner.run(specs)
    print(runner.last_report.summary_table())
"""

from repro.runner.cache import ResultCache
from repro.runner.engine import ParallelRunner, RunnerOutcome, resolve_jobs
from repro.runner.execute import InjectedFault, execute_spec, run_task
from repro.runner.executors import (
    Cell,
    CellExecutor,
    InProcessExecutor,
    LocalPoolExecutor,
)
from repro.runner.journal import (
    JOURNAL_SCHEMA,
    JournalState,
    RunJournal,
    grid_fingerprint,
)
from repro.runner.retry import DETERMINISTIC_ERRORS, RetryPolicy, RunError
from repro.runner.taskspec import (
    SPEC_SCHEMA,
    TaskSpec,
    canonical_json,
    chaos_spec,
    comparison_spec,
    fingerprint_of,
    lora_spec,
    network_size_spec,
    scale_spec,
    selftest_spec,
    soak_spec,
    wake_interval_spec,
)
from repro.runner.telemetry import CellTelemetry, RunnerReport

__all__ = [
    "DETERMINISTIC_ERRORS",
    "JOURNAL_SCHEMA",
    "SPEC_SCHEMA",
    "Cell",
    "CellExecutor",
    "CellTelemetry",
    "InProcessExecutor",
    "LocalPoolExecutor",
    "InjectedFault",
    "JournalState",
    "ParallelRunner",
    "ResultCache",
    "RetryPolicy",
    "RunError",
    "RunJournal",
    "RunnerOutcome",
    "RunnerReport",
    "TaskSpec",
    "grid_fingerprint",
    "canonical_json",
    "chaos_spec",
    "comparison_spec",
    "execute_spec",
    "fingerprint_of",
    "lora_spec",
    "network_size_spec",
    "resolve_jobs",
    "run_task",
    "scale_spec",
    "selftest_spec",
    "soak_spec",
    "wake_interval_spec",
]
