"""Retry policy: error classification and seeded exponential backoff.

A :class:`RetryPolicy` replaces the engine's old flat attempt counter with
three explicit failure classes:

- **transient** — an exception that may not recur (an :class:`OSError`, an
  injected fault, a flaky worker): retried with exponential backoff until
  the budget runs out, then the cell fails;
- **deterministic** — an exception that will recur on every attempt (bad
  parameters, an unknown task kind, an executor raising :class:`RunError`):
  the cell fails fast, burning a single attempt and zero backoff;
- **poison** — a cell whose *worker* keeps dying or hanging (crash or
  watchdog/timeout kill): after the budget it is failed *and* quarantined
  in the run journal, so a resumed grid skips it instead of re-poisoning
  the pool.

Backoff delays are seeded: the jitter for (cell fingerprint, attempt) is a
pure function of the policy seed, so two invocations of the same grid
schedule identical delays — the runner stays deterministic end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict


class RunError(RuntimeError):
    """A *deterministic* cell failure: retrying cannot help.

    Executors (and user task kinds) raise this for errors that are a pure
    function of the spec — invalid configuration, an impossible schedule, a
    topology with no sink. The engine fails the cell on the first attempt
    instead of burning the retry budget re-computing the same exception.
    """


#: Exception types classified as deterministic (fail fast, never retried).
#: Everything else — including :class:`repro.runner.execute.InjectedFault`,
#: which models a flaky worker — is treated as transient.
DETERMINISTIC_ERRORS = (RunError, ValueError, TypeError, KeyError)


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine spends a cell's retry budget.

    ``retries`` is the number of *extra* attempts after the first (so
    ``max_attempts == retries + 1``). Backoff for attempt ``n`` (0-based,
    counting failed attempts so far) is
    ``min(backoff_base_s * backoff_factor**n, backoff_max_s)`` scaled by a
    seeded jitter in ``[1 - jitter, 1 + jitter]``.
    """

    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @property
    def max_attempts(self) -> int:
        """Total attempts a cell may consume (first try + retries)."""
        return self.retries + 1

    def classify(self, error: BaseException) -> str:
        """``"deterministic"`` (fail fast) or ``"transient"`` (retry)."""
        return (
            "deterministic"
            if isinstance(error, DETERMINISTIC_ERRORS)
            else "transient"
        )

    def delay(self, fingerprint: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``fingerprint``.

        ``attempt`` is the 0-based attempt that just failed. Deterministic:
        ``random.Random`` seeds strings via SHA-512, independent of
        ``PYTHONHASHSEED``, so the same (policy, cell, attempt) always
        yields the same delay.
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        base = min(
            self.backoff_base_s * self.backoff_factor ** attempt,
            self.backoff_max_s,
        )
        if self.jitter == 0.0:
            return base
        rng = random.Random(f"{self.seed}:{fingerprint}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict — folded into the run-journal grid fingerprint."""
        return {
            "retries": self.retries,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "backoff_max_s": self.backoff_max_s,
            "jitter": self.jitter,
            "seed": self.seed,
        }
