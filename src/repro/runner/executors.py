"""Pluggable cell executors: *how* a grid's pending cells get drained.

:class:`~repro.runner.engine.ParallelRunner` is the **scheduler**: it owns
the cache/journal pass, retry policy, signal handling, outcome assembly,
and telemetry. The executor owns only the execution strategy — it receives
the queue of not-yet-settled cells and drives each one to a final
disposition through the scheduler's callbacks
(``scheduler._finalize`` / ``scheduler._handle_failure``):

- :class:`InProcessExecutor` — cells run serially in the calling process
  (the historical ``jobs=1`` path, bit-identical to the original drivers);
- :class:`LocalPoolExecutor` — cells fan out over a spawn-context
  ``ProcessPoolExecutor`` with crash containment, honest attribution, and
  the heartbeat watchdog (the historical ``jobs=N`` path);
- :class:`repro.farm.QueueExecutor` — cells are leased from a shared
  file-backed work-stealing queue so any number of worker processes (on
  any host that can see the directory) drain one grid, with the
  content-addressed cache as the dedup/rendezvous layer.

All three produce bit-identical results for the same specs (enforced by
``tests/test_executor_conformance.py``): simulations are deterministic per
spec, so *where* a cell runs can never change *what* it returns.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Set,
)

from repro.runner.execute import run_task
from repro.runner.journal import RunJournal
from repro.runner.taskspec import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle broken for typing only
    from repro.runner.engine import ParallelRunner


@dataclass
class Cell:
    """Mutable scheduling state of one not-yet-final cell.

    Shared vocabulary between the scheduler and every executor: ``attempt``
    counts failed attempts charged against the retry budget, ``requeues``
    counts innocent re-dispatches (pool rebuilds, lease takeovers) that do
    *not* burn it, and ``not_before`` is the backoff gate.
    """

    index: int
    spec: TaskSpec
    #: Failed attempts charged so far (the retry budget consumed).
    attempt: int = 0
    #: Innocent pool-rebuild requeues suffered (budget NOT consumed).
    requeues: int = 0
    #: Monotonic time before which the cell must not be dispatched (backoff).
    not_before: float = 0.0


#: Sentinel meaning "no heartbeat progress sample read yet".
_NO_PROGRESS = object()


@dataclass
class _Flight:
    """One submitted future's bookkeeping."""

    cell: Cell
    deadline: float
    submitted: float
    heartbeat: Optional[str] = None
    progress: Any = _NO_PROGRESS
    progress_at: float = 0.0


class CellExecutor:
    """The executor contract the scheduler drives.

    An executor drains ``pending`` until every cell reached a final
    disposition (or the scheduler was interrupted), calling back into the
    scheduler for every settlement so caching, journaling, retry
    accounting, and telemetry stay centralised:

    - ``scheduler._finalize(outcomes, cell, reply, journal)`` for success;
    - ``scheduler._handle_failure(pending, outcomes, cell, wall, journal,
      kind=..., ...)`` for errors/crashes/hangs (it re-queues or fails);
    - ``scheduler._interrupts`` must be polled — ``>= 1`` means stop
      dispatching new cells, ``>= 2`` means abandon in-flight work.

    ``name`` lands in :class:`~repro.runner.telemetry.RunnerReport` and
    ``slots`` is the executor's parallelism (the telemetry ``jobs`` value).
    """

    name = "abstract"

    @property
    def slots(self) -> int:
        """Worker slots this executor runs cells on (telemetry only)."""
        return 1

    def drain(
        self,
        scheduler: "ParallelRunner",
        pending: Deque[Cell],
        outcomes: List[Any],
        journal: Optional[RunJournal],
    ) -> None:
        raise NotImplementedError


# ------------------------------------------------------------------- serial

class InProcessExecutor(CellExecutor):
    """Serial execution in the calling process — the ``jobs=1`` path.

    No pool, no pickling, no watchdog: cells run through the very same
    :func:`~repro.runner.execute.run_task` the workers use, one at a time,
    so results are bit-identical to every other executor and the historical
    serial drivers.
    """

    name = "in-process"

    def drain(
        self,
        scheduler: "ParallelRunner",
        pending: Deque[Cell],
        outcomes: List[Any],
        journal: Optional[RunJournal],
    ) -> None:
        while pending:
            if scheduler._interrupts:
                return
            cell = pending.popleft()
            wait_s = cell.not_before - time.monotonic()
            if wait_s > 0 and not scheduler._sleep_interruptible(wait_s):
                pending.appendleft(cell)
                return
            scheduler._emit(
                f"run {cell.spec.name}", cell=cell.spec.name, attempt=cell.attempt
            )
            scheduler._journal(
                journal,
                "dispatch",
                cell=cell.spec.fingerprint,
                index=cell.index,
                attempt=cell.attempt,
            )
            cell_started = time.perf_counter()
            try:
                reply = run_task(
                    {"spec": cell.spec.to_dict(), "attempt": cell.attempt},
                    in_process=True,
                )
            except Exception as exc:  # injected faults / executor bugs
                scheduler._handle_failure(
                    pending,
                    outcomes,
                    cell,
                    time.perf_counter() - cell_started,
                    journal,
                    kind="error",
                    exc=exc,
                )
                continue
            scheduler._finalize(outcomes, cell, reply, journal)


# ------------------------------------------------------------------- pooled

class LocalPoolExecutor(CellExecutor):
    """Process-pool execution on the local machine — the ``jobs=N`` path.

    Carries over the engine's full battle kit: bounded in-flight window,
    per-cell timeout, heartbeat watchdog, crash containment with
    one-at-a-time suspect isolation after ambiguous pool breaks, and
    innocent-bystander requeues that never burn the retry budget.
    """

    name = "local-pool"

    def __init__(self, jobs: int, mp_context: str = "spawn") -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.mp_context = mp_context

    @property
    def slots(self) -> int:
        return self.jobs

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context(self.mp_context),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly stop a pool whose workers may be hung or dead."""
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
            except Exception:  # already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _pick(
        self,
        pending: Deque[Cell],
        suspects: Set[str],
        in_flight: Dict[Future, _Flight],
        now: float,
    ) -> Optional[Cell]:
        """Next dispatchable cell, honouring backoff and crash isolation.

        While ``suspects`` is non-empty (a pool break with ambiguous
        attribution), cells are dispatched one at a time so the next break
        unambiguously names its offender.
        """
        if suspects and not any(
            c.spec.fingerprint in suspects for c in pending
        ):
            suspects.clear()  # every suspect reached a final disposition
        restrict = bool(suspects)
        if restrict and in_flight:
            return None
        for position, cell in enumerate(pending):
            if restrict and cell.spec.fingerprint not in suspects:
                continue
            if cell.not_before > now:
                if restrict:
                    return None  # keep isolation strict even across backoff
                continue
            del pending[position]
            return cell
        return None

    def _submit_ready(
        self,
        scheduler: "ParallelRunner",
        pool: ProcessPoolExecutor,
        pending: Deque[Cell],
        in_flight: Dict[Future, _Flight],
        suspects: Set[str],
        heartbeat_dir: Optional[str],
        heartbeat_s: float,
        journal: Optional[RunJournal],
    ) -> ProcessPoolExecutor:
        while pending and len(in_flight) < self.jobs:
            now = time.monotonic()
            cell = self._pick(pending, suspects, in_flight, now)
            if cell is None:
                break
            deadline = (
                now + scheduler.timeout
                if scheduler.timeout is not None
                else float("inf")
            )
            payload: Dict[str, Any] = {
                "spec": cell.spec.to_dict(),
                "attempt": cell.attempt,
            }
            heartbeat_path = None
            if heartbeat_dir is not None:
                heartbeat_path = os.path.join(
                    heartbeat_dir, f"hb-{cell.index}-{cell.attempt}.json"
                )
                payload["heartbeat"] = heartbeat_path
                payload["heartbeat_s"] = heartbeat_s
            scheduler._emit(
                f"run {cell.spec.name}", cell=cell.spec.name, attempt=cell.attempt
            )
            scheduler._journal(
                journal,
                "dispatch",
                cell=cell.spec.fingerprint,
                index=cell.index,
                attempt=cell.attempt,
            )
            try:
                future = pool.submit(run_task, payload)
            except BrokenProcessPool:
                # The pool died between completions. If futures are still in
                # flight their breakage is handled by the main loop;
                # otherwise rebuild right here so the loop can't spin.
                pending.appendleft(cell)
                if not in_flight:
                    self._kill_pool(pool)
                    pool = self._new_pool()
                break
            in_flight[future] = _Flight(
                cell, deadline, now, heartbeat_path, _NO_PROGRESS, now
            )
        return pool

    def _watchdog_verdict(
        self, scheduler: "ParallelRunner", flight: _Flight, now: float
    ) -> Optional[str]:
        """Why this flight should be killed, or None while it looks alive.

        Distinguishes the failure modes: *no heartbeat file* / *stale
        heartbeat* means the worker is dead or frozen; *fresh heartbeat
        with flat progress* means the simulation itself is hung.
        """
        window = scheduler.watchdog
        assert window is not None and flight.heartbeat is not None
        try:
            stat = os.stat(flight.heartbeat)
        except OSError:
            # Spawned workers import the package before the first beat;
            # give them a doubled grace window to appear at all.
            if now - flight.submitted > 2 * window:
                return (
                    f"no heartbeat within {2 * window:.1f}s of dispatch "
                    "(worker presumed dead)"
                )
            return None
        staleness = time.time() - stat.st_mtime
        if staleness > window:
            return f"heartbeat lost for {staleness:.1f}s (worker hung or dead)"
        try:
            beat = json.loads(Path(flight.heartbeat).read_text())
        except (OSError, ValueError):  # racing the atomic replace
            return None
        progress = (beat.get("events"), beat.get("sim_t"))
        if flight.progress is _NO_PROGRESS or progress != flight.progress:
            flight.progress = progress
            flight.progress_at = now
            return None
        if now - flight.progress_at > window:
            return (
                f"stalled: no simulator progress for "
                f"{now - flight.progress_at:.1f}s (hung cell)"
            )
        return None

    def drain(
        self,
        scheduler: "ParallelRunner",
        pending: Deque[Cell],
        outcomes: List[Any],
        journal: Optional[RunJournal],
    ) -> None:
        pool = self._new_pool()
        in_flight: Dict[Future, _Flight] = {}
        suspects: Set[str] = set()
        heartbeat_dir = (
            tempfile.mkdtemp(prefix="repro-heartbeat-")
            if scheduler.watchdog is not None
            else None
        )
        heartbeat_s = min(1.0, (scheduler.watchdog or 4.0) / 4.0)
        tick = (
            0.1
            if scheduler.timeout is None
            else min(0.1, scheduler.timeout / 4)
        )
        try:
            while pending or in_flight:
                if scheduler._interrupts >= 2:
                    return  # abandon: in-flight cells stay unfinished
                if scheduler._interrupts == 0:
                    pool = self._submit_ready(
                        scheduler, pool, pending, in_flight, suspects,
                        heartbeat_dir, heartbeat_s, journal,
                    )
                elif not in_flight:
                    return  # drained
                if not in_flight:
                    # Every dispatchable cell is backing off; nap briefly.
                    soonest = min(cell.not_before for cell in pending)
                    time.sleep(
                        min(max(soonest - time.monotonic(), 0.0), 0.25) or 0.01
                    )
                    continue

                done, _ = wait(in_flight, timeout=tick, return_when=FIRST_COMPLETED)
                broken: List[_Flight] = []
                for future in done:
                    flight = in_flight.pop(future)
                    cell = flight.cell
                    exc = future.exception()
                    if exc is None:
                        scheduler._finalize(outcomes, cell, future.result(), journal)
                        suspects.discard(cell.spec.fingerprint)
                    elif isinstance(exc, BrokenProcessPool):
                        broken.append(flight)
                    else:
                        scheduler._handle_failure(
                            pending,
                            outcomes,
                            cell,
                            time.monotonic() - flight.submitted,
                            journal,
                            kind="error",
                            exc=exc,
                        )
                        if outcomes[cell.index] is not None:
                            suspects.discard(cell.spec.fingerprint)

                if broken:
                    # Everything still in flight shares the dead pool.
                    casualties = broken + list(in_flight.values())
                    in_flight.clear()
                    self._kill_pool(pool)
                    now = time.monotonic()
                    if len(casualties) == 1:
                        # Sole occupant: attribution is certain — charge it.
                        flight = casualties[0]
                        scheduler._handle_failure(
                            pending,
                            outcomes,
                            flight.cell,
                            now - flight.submitted,
                            journal,
                            kind="crash",
                            error="worker process died (BrokenProcessPool)",
                        )
                    else:
                        # Ambiguous: requeue everyone without burning budget
                        # and isolate; the next break names its offender.
                        for flight in sorted(
                            casualties, key=lambda f: f.cell.index, reverse=True
                        ):
                            cell = flight.cell
                            cell.requeues += 1
                            suspects.add(cell.spec.fingerprint)
                            scheduler._journal(
                                journal,
                                "requeue",
                                cell=cell.spec.fingerprint,
                                requeues=cell.requeues,
                                reason="pool broken (sibling worker died)",
                            )
                            scheduler._emit(
                                f"requeue {cell.spec.name} (pool broken, "
                                "isolating suspects)",
                                cell=cell.spec.name,
                            )
                            pending.appendleft(cell)
                    pool = self._new_pool()
                    continue

                now = time.monotonic()
                expired: Dict[Future, str] = {}
                for future, flight in in_flight.items():
                    if now > flight.deadline:
                        expired[future] = f"timed out after {scheduler.timeout}s"
                    elif heartbeat_dir is not None and flight.heartbeat:
                        verdict = self._watchdog_verdict(scheduler, flight, now)
                        if verdict is not None:
                            expired[future] = verdict
                if expired:
                    # There is no portable way to interrupt one worker, so
                    # the pool dies; offenders are charged, innocent
                    # bystanders are re-queued without burning budget.
                    self._kill_pool(pool)
                    for future, flight in in_flight.items():
                        cell = flight.cell
                        if future in expired:
                            scheduler._handle_failure(
                                pending,
                                outcomes,
                                cell,
                                now - flight.submitted,
                                journal,
                                kind="hang",
                                error=expired[future],
                            )
                        else:
                            cell.requeues += 1
                            scheduler._journal(
                                journal,
                                "requeue",
                                cell=cell.spec.fingerprint,
                                requeues=cell.requeues,
                                reason="pool restarted (sibling killed)",
                            )
                            scheduler._emit(
                                f"requeue {cell.spec.name} (pool restarted)",
                                cell=cell.spec.name,
                            )
                            pending.appendleft(cell)
                    in_flight.clear()
                    pool = self._new_pool()
        finally:
            self._kill_pool(pool)
            if heartbeat_dir is not None:
                shutil.rmtree(heartbeat_dir, ignore_errors=True)
