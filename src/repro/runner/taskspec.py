"""Canonical task descriptions and content-addressed cache keys.

A :class:`TaskSpec` is the unit of work the execution engine schedules: one
experiment cell (one ``run_comparison`` invocation, one sweep point, …)
described entirely by JSON-serialisable parameters. Because the description
is canonical — sorted keys, plain scalars/lists/dicts only — it hashes to a
stable *fingerprint* that doubles as the result-cache key. The fingerprint
folds in :data:`repro.version.__version__`, so bumping the package version
invalidates every cached cell at once (simulation behaviour may have
changed), while an unchanged cell on an unchanged version is loaded from
disk instead of re-simulated.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.sim.simulator import KERNEL_BEHAVIOR_VERSION
from repro.version import __version__

#: Bump when the spec/result wire format changes incompatibly; folded into
#: every fingerprint so old cache entries become unreachable, not corrupt.
SPEC_SCHEMA = 1


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to the canonical JSON text used for hashing.

    Sorted keys and tight separators make the text independent of dict
    insertion order; anything non-JSON-serialisable is a hard error (a cache
    key must never silently depend on ``repr`` of an arbitrary object).
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def fingerprint_of(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable experiment cell.

    ``kind`` selects the executor (see :mod:`repro.runner.execute`);
    ``params`` must be JSON-serialisable and fully determine the cell's
    outcome. ``label`` and ``fault`` are *not* part of the fingerprint:
    the label is cosmetic and the fault hook exists only so tests can
    inject worker crashes/hangs/errors without changing cache identity.
    """

    kind: str
    params: Dict[str, Any]
    label: str = ""
    fault: Optional[Dict[str, Any]] = field(default=None)

    @property
    def fingerprint(self) -> str:
        """Content hash of (schema, kind, params, repro + kernel versions).

        :data:`repro.sim.KERNEL_BEHAVIOR_VERSION` is folded in so that a
        digest-affecting kernel change (bumped alongside the golden corpus
        in ``tests/golden/``) invalidates every cached cell even when the
        package version is unchanged — stale cells re-simulate instead of
        silently mixing two kernels' results in one grid.
        """
        return fingerprint_of(
            {
                "schema": SPEC_SCHEMA,
                "kind": self.kind,
                "kernel": KERNEL_BEHAVIOR_VERSION,
                "params": self.params,
                "version": __version__,
            }
        )

    @property
    def name(self) -> str:
        """Human-readable cell name for progress/telemetry lines."""
        return self.label or f"{self.kind}[{self.fingerprint[:10]}]"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (crosses the process boundary to workers)."""
        return {
            "kind": self.kind,
            "params": self.params,
            "label": self.label,
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            params=dict(data["params"]),
            label=data.get("label", "") or "",
            fault=data.get("fault"),
        )


# --------------------------------------------------------------- spec builders

def comparison_spec(
    variant: str,
    zigbee_channel: int = 26,
    seed: int = 0,
    **kwargs: Any,
) -> TaskSpec:
    """Spec for one :func:`repro.experiments.comparison.run_comparison` cell.

    The fingerprint covers the *derived* :class:`NetworkConfig` (via its
    canonical ``to_dict``), not just the front-end arguments, so any change
    to how a variant maps onto a network configuration invalidates the cache.
    """
    from repro.experiments.comparison import COMPARISON_DEFAULTS, config_for

    schedule = dict(COMPARISON_DEFAULTS)
    for key, value in kwargs.items():
        if key not in schedule:
            raise TypeError(f"unknown run_comparison argument: {key!r}")
        schedule[key] = value
    config = config_for(variant, zigbee_channel, seed)
    return TaskSpec(
        kind="comparison",
        params={
            "variant": variant,
            "zigbee_channel": zigbee_channel,
            "seed": seed,
            "schedule": schedule,
            "config": config.to_dict(),
        },
        label=f"{variant}/ch{zigbee_channel}/seed{seed}",
    )


def chaos_spec(
    variant: str,
    scenario: str = "mixed",
    intensity: float = 0.5,
    seed: int = 0,
    zigbee_channel: int = 26,
    **kwargs: Any,
) -> TaskSpec:
    """Spec for one :func:`repro.experiments.chaos.run_chaos` cell.

    The fingerprint covers the derived :class:`NetworkConfig` *including
    the canonical fault plan*, so editing a scenario preset (or the plan
    builder) invalidates cached chaos cells while leaving fault-free
    comparison cells untouched.
    """
    from repro.experiments.chaos import CHAOS_DEFAULTS, chaos_config

    schedule = dict(CHAOS_DEFAULTS)
    for key, value in kwargs.items():
        if key not in schedule:
            raise TypeError(f"unknown run_chaos argument: {key!r}")
        schedule[key] = value
    config = chaos_config(
        variant,
        scenario,
        intensity,
        seed,
        zigbee_channel,
        n_controls=schedule["n_controls"],
        control_interval_s=schedule["control_interval_s"],
    )
    return TaskSpec(
        kind="chaos",
        params={
            "variant": variant,
            "scenario": scenario,
            "intensity": intensity,
            "seed": seed,
            "zigbee_channel": zigbee_channel,
            "schedule": schedule,
            "config": config.to_dict(),
        },
        label=f"chaos/{scenario}/{variant}/i{intensity:g}/seed{seed}",
    )


def lora_spec(
    variant: str,
    seed: int = 0,
    radio_profile: str = "lora",
    **kwargs: Any,
) -> TaskSpec:
    """Spec for one :func:`repro.experiments.lora.run_lora` cell.

    The fingerprint covers the derived :class:`NetworkConfig` *including
    the profile-derived field topology* (``config.to_dict()`` serialises
    the deployment positions), so editing the profile's propagation or
    PRR model — which moves the nodes — invalidates cached cells.
    """
    from repro.experiments.lora import LORA_DEFAULTS, lora_config

    schedule = dict(LORA_DEFAULTS)
    for key, value in kwargs.items():
        if key not in schedule:
            raise TypeError(f"unknown run_lora argument: {key!r}")
        schedule[key] = value
    config = lora_config(variant, seed=seed, radio_profile=radio_profile)
    return TaskSpec(
        kind="lora",
        params={
            "variant": variant,
            "seed": seed,
            "radio_profile": radio_profile,
            "schedule": schedule,
            "config": config.to_dict(),
        },
        label=f"lora/{radio_profile}/{variant}/seed{seed}",
    )


def wake_interval_spec(
    wake_ms: int,
    protocol: str = "tele",
    seed: int = 1,
    n_controls: int = 12,
    converge_seconds: float = 240.0,
) -> TaskSpec:
    """Spec for one wake-interval sweep point."""
    from repro.protocols import REGISTRY

    # Reject unregistered protocols at spec-build time, not in a worker.
    REGISTRY.get(protocol)
    return TaskSpec(
        kind="wake-interval",
        params={
            "wake_ms": int(wake_ms),
            "protocol": protocol,
            "seed": seed,
            "n_controls": n_controls,
            "converge_seconds": converge_seconds,
        },
        label=f"wake{wake_ms}ms/{protocol}/seed{seed}",
    )


def network_size_spec(
    size: int,
    field_density: float = 170.0,
    seed: int = 1,
    n_controls: int = 10,
) -> TaskSpec:
    """Spec for one network-size sweep point."""
    return TaskSpec(
        kind="network-size",
        params={
            "size": int(size),
            "field_density": field_density,
            "seed": seed,
            "n_controls": n_controls,
        },
        label=f"n{size}/seed{seed}",
    )


def scale_spec(
    topo: str = "forest",
    size: int = 2000,
    seed: int = 1,
    spatial_index: object = True,
    **kwargs: Any,
) -> TaskSpec:
    """Spec for one city-scale cell (:func:`repro.experiments.scale.scale_point`).

    ``topo``/``size``/``seed`` deterministically rebuild the deployment in
    the worker (like ``network-size``), so positions need not ride in the
    params; ``spatial_index`` is part of the fingerprint because toggling
    the index must never be able to alias a cached brute-force run.
    """
    from repro.experiments.harness import _normalize_spatial_index
    from repro.experiments.scale import SCALE_DEFAULTS, SCALE_TOPOLOGIES

    if topo not in SCALE_TOPOLOGIES:
        raise ValueError(f"unknown scale topology {topo!r}; choose from {SCALE_TOPOLOGIES}")
    schedule = dict(SCALE_DEFAULTS)
    for key, value in kwargs.items():
        if key not in schedule:
            raise TypeError(f"unknown scale_point argument: {key!r}")
        schedule[key] = value
    normalized = _normalize_spatial_index(spatial_index)
    return TaskSpec(
        kind="scale",
        params={
            "topo": topo,
            "size": int(size),
            "seed": int(seed),
            "spatial_index": None if normalized is None else normalized.to_dict(),
            "schedule": schedule,
        },
        label=f"scale/{topo}/n{size}/seed{seed}"
        + ("" if normalized is not None else "/dense"),
    )


def soak_spec(
    variant: str = "tele",
    seed: int = 0,
    zigbee_channel: int = 26,
    **kwargs: Any,
) -> TaskSpec:
    """Spec for one endurance cell (:func:`repro.experiments.soak.run_soak`).

    The fingerprint covers the derived :class:`NetworkConfig` *including
    the mobility/battery/reclamation knobs* (via its canonical ``to_dict``),
    so a zero-churn zero-depletion soak fingerprints exactly like the
    comparison config plus the soak schedule — and any change to how the
    endurance knobs map onto a config invalidates cached cells.
    """
    from repro.experiments.soak import SOAK_DEFAULTS, soak_config

    schedule = dict(SOAK_DEFAULTS)
    for key, value in kwargs.items():
        if key not in schedule:
            raise TypeError(f"unknown run_soak argument: {key!r}")
        schedule[key] = value
    config = soak_config(
        variant,
        seed,
        zigbee_channel,
        churn_intensity=schedule["churn_intensity"],
        battery_mah=schedule["battery_mah"],
        reclaim_ttl_s=schedule["reclaim_ttl_s"],
        converge_seconds=schedule["converge_seconds"],
    )
    return TaskSpec(
        kind="soak",
        params={
            "variant": variant,
            "seed": seed,
            "zigbee_channel": zigbee_channel,
            "schedule": schedule,
            "config": config.to_dict(),
        },
        label=(
            f"soak/{variant}/i{schedule['churn_intensity']:g}"
            f"/{schedule['duration_s']:g}s/seed{seed}"
        ),
    )


def selftest_spec(
    index: int, sleep_s: float = 0.0, payload: int = 0, **extra: Any
) -> TaskSpec:
    """Cheap deterministic cell for engine tests and throughput canaries."""
    return TaskSpec(
        kind="selftest",
        params={"index": int(index), "sleep_s": float(sleep_s), "payload": int(payload)},
        label=f"selftest{index}",
        **extra,
    )
