"""Per-cell and per-grid execution telemetry.

Every :class:`~repro.runner.engine.ParallelRunner.run` produces a
:class:`RunnerReport`: one :class:`CellTelemetry` per cell (executed /
cached / resumed-from-journal / failed / interrupted, attempts, innocent
requeues, wall seconds, scheduled sim seconds) plus aggregate counters —
journal hits, total backoff delay, the quarantined-cell list — and a
summary table rendered in the repo's usual ASCII-table style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class CellTelemetry:
    """How one cell fared."""

    index: int
    label: str
    kind: str
    fingerprint: str
    #: "executed" | "cached" | "journal" | "failed" | "interrupted"
    status: str
    attempts: int = 1
    #: Wall-clock seconds spent simulating (0 for cached cells).
    wall_s: float = 0.0
    #: Scheduled simulated seconds (the cell's size, wall-independent).
    sim_s: float = 0.0
    error: Optional[str] = None
    #: Kernel events the cell dispatched (None for cached/failed cells or
    #: executors that don't report one).
    events: Optional[int] = None
    #: Pool-rebuild requeues the cell suffered as an innocent bystander —
    #: these never burn the retry budget (attempts counts only the cell's
    #: own failures).
    requeues: int = 0
    #: True when the cell was quarantined as poison (its worker kept dying
    #: or hanging); a resumed grid skips it instead of re-running it.
    quarantined: bool = False


@dataclass
class RunnerReport:
    """Aggregate outcome of one grid run."""

    jobs: int
    #: Name of the executor that drained the grid ("in-process",
    #: "local-pool", "queue", …) — see :mod:`repro.runner.executors`.
    executor: str = "in-process"
    #: The ``jobs`` value as requested (0 = auto-detect); ``jobs`` above is
    #: always the resolved worker count, so auto-detection is never silent.
    jobs_requested: Optional[int] = None
    cells: List[CellTelemetry] = field(default_factory=list)
    #: Wall-clock seconds for the whole grid (includes scheduling overhead).
    wall_s: float = 0.0
    #: Total seconds of retry backoff the engine scheduled this run.
    backoff_s: float = 0.0
    #: Path of the run journal, when one was configured.
    journal: Optional[str] = None

    def _count(self, status: str) -> int:
        return sum(1 for c in self.cells if c.status == status)

    @property
    def executed(self) -> int:
        """Cells that were actually simulated this run."""
        return self._count("executed")

    @property
    def cached(self) -> int:
        """Cells answered from the result cache."""
        return self._count("cached")

    @property
    def resumed(self) -> int:
        """Cells answered from the run journal (journal hits on resume)."""
        return self._count("journal")

    @property
    def failed(self) -> int:
        """Cells that exhausted their retry budget (or failed fast)."""
        return self._count("failed")

    @property
    def interrupted(self) -> int:
        """Cells left unfinished by a graceful shutdown — resumable."""
        return self._count("interrupted")

    @property
    def retried(self) -> int:
        """Cells that needed more than one attempt."""
        return sum(1 for c in self.cells if c.attempts > 1)

    @property
    def requeues(self) -> int:
        """Total innocent pool-rebuild requeues across cells."""
        return sum(c.requeues for c in self.cells)

    @property
    def sim_seconds(self) -> float:
        """Total scheduled simulated seconds across executed cells."""
        return sum(c.sim_s for c in self.cells if c.status == "executed")

    @property
    def throughput(self) -> Optional[float]:
        """Simulated seconds per wall second (the speed-up to brag about)."""
        if self.wall_s <= 0:
            return None
        return self.sim_seconds / self.wall_s

    @property
    def events_total(self) -> int:
        """Total kernel events dispatched across executed cells."""
        return sum(c.events for c in self.cells if c.events is not None)

    @property
    def events_per_s(self) -> Optional[float]:
        """Kernel events per wall second of simulation — the perf trajectory
        tracked by BENCH_kernel.json (None when no cell reported events)."""
        reporting = [c for c in self.cells if c.events is not None and c.wall_s > 0]
        if not reporting:
            return None
        wall = sum(c.wall_s for c in reporting)
        return sum(c.events for c in reporting) / wall if wall > 0 else None

    def failures(self) -> List[CellTelemetry]:
        """The failed cells, each carrying its exception repr and attempts."""
        return [c for c in self.cells if c.status == "failed"]

    def quarantined(self) -> List[CellTelemetry]:
        """Poison cells quarantined this run (subset of :meth:`failures`)."""
        return [c for c in self.cells if c.quarantined]

    def counters(self) -> Dict[str, Any]:
        """The summary numbers as a plain dict (for JSON/bench output)."""
        return {
            "jobs": self.jobs,
            "jobs_requested": self.jobs_requested,
            "executor": self.executor,
            "cells": len(self.cells),
            "executed": self.executed,
            "cached": self.cached,
            "resumed": self.resumed,
            "failed": self.failed,
            "interrupted": self.interrupted,
            "retried": self.retried,
            "requeues": self.requeues,
            "backoff_s": self.backoff_s,
            "wall_s": self.wall_s,
            "sim_seconds": self.sim_seconds,
            "throughput": self.throughput,
            "events_total": self.events_total,
            "events_per_s": self.events_per_s,
            "journal": self.journal,
            "quarantined": [c.label for c in self.quarantined()],
            "failures": [
                {"label": c.label, "attempts": c.attempts, "error": c.error}
                for c in self.failures()
            ],
        }

    def summary_line(self) -> str:
        """One-line grid outcome for progress streams (plus failure details)."""
        rate = self.throughput
        events_rate = self.events_per_s
        line = f"{len(self.cells)} cells: {self.executed} executed, {self.cached} cached"
        if self.resumed:
            line += f", {self.resumed} resumed"
        if self.interrupted:
            line += f", {self.interrupted} interrupted"
        line += f", {self.failed} failed ({self.retried} retried"
        if self.requeues:
            line += f", {self.requeues} requeued"
        line += f") in {self.wall_s:.1f}s wall"
        if rate and self.sim_seconds > 0:
            line += f", {rate:.0f} sim-s/s"
        if events_rate:
            line += f", {events_rate / 1000:.0f}k ev/s"
        if self.backoff_s:
            line += f", {self.backoff_s:.2f}s backoff"
        for cell in self.failures():
            tag = " [quarantined]" if cell.quarantined else ""
            line += (
                f"\n  FAILED {cell.label}: {cell.attempts} attempt(s): "
                f"{cell.error}{tag}"
            )
        if self.interrupted:
            line += (
                f"\n  INTERRUPTED: {self.interrupted} cell(s) unfinished"
                + (" — resumable from the run journal" if self.journal else "")
            )
        return line

    def summary_table(self) -> str:
        """Per-cell ASCII table plus the aggregate line."""
        from repro.experiments.report import ascii_table

        rows = [
            [
                c.label or c.fingerprint[:10],
                c.kind,
                c.status + ("*" if c.quarantined else ""),
                c.attempts,
                c.requeues,
                f"{c.wall_s:.2f}",
                f"{c.sim_s:.0f}",
                c.error or "",
            ]
            for c in self.cells
        ]
        table = ascii_table(
            ["cell", "kind", "status", "attempts", "req", "wall_s", "sim_s", "error"],
            rows,
            title=f"Runner telemetry (executor={self.executor}, jobs={self.jobs})",
        )
        return table + "\n" + self.summary_line()
