"""The experiment scheduler: cache/journal pass, retry, telemetry.

:class:`ParallelRunner` schedules :class:`~repro.runner.taskspec.TaskSpec`
cells onto a pluggable :class:`~repro.runner.executors.CellExecutor`
(see :mod:`repro.runner.executors`), keeping every cross-cutting concern on
the scheduler side:

- a result cache consulted before any simulation happens;
- an optional **run journal** (:mod:`repro.runner.journal`): every
  dispatch/completion/failure is durably appended, so a grid killed hard
  (SIGKILL, OOM, reboot) resumes where it stopped — completed cells are
  served from the journal bit-identically, in-flight ones re-run;
- a :class:`~repro.runner.retry.RetryPolicy` with seeded exponential
  backoff and error classification: transient errors retry, deterministic
  :class:`~repro.runner.retry.RunError`-style exceptions fail fast, and
  poison cells (workers that keep dying or hanging) are quarantined in
  the journal after the budget;
- graceful shutdown: with ``handle_signals=True``, the first
  SIGINT/SIGTERM drains in-flight cells and journals the rest as
  interrupted (resumable); a second signal abandons in-flight work
  immediately. Either way the journal and telemetry are flushed;
- deterministic result ordering: outcomes come back in spec order no matter
  what order cells finished in.

Execution strategy is the executor's business: ``jobs=1`` selects the
serial :class:`~repro.runner.executors.InProcessExecutor` (bit-identical
to the historical serial drivers), ``jobs=N`` the process-pool
:class:`~repro.runner.executors.LocalPoolExecutor` (per-cell timeout,
heartbeat watchdog, crash containment with honest attribution), and
``jobs=0`` auto-detects ``os.cpu_count()``. Passing ``executor=`` swaps in
any other strategy — e.g. :class:`repro.farm.QueueExecutor`, which drains
the grid through a shared work-stealing lease queue that external worker
processes (other hosts included) can join.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.runner.cache import ResultCache
from repro.runner.execute import sim_seconds_estimate
from repro.runner.executors import (
    Cell,
    CellExecutor,
    InProcessExecutor,
    LocalPoolExecutor,
)
from repro.runner.journal import JournalState, RunJournal
from repro.runner.retry import RetryPolicy
from repro.runner.taskspec import TaskSpec
from repro.runner.telemetry import CellTelemetry, RunnerReport

#: Signature of a progress sink: ``(category, message, **data)`` — matches
#: :meth:`repro.sim.trace.Tracer.emit`, so a Tracer can be plugged directly.
ProgressSink = Callable[..., None]


def resolve_jobs(jobs: int) -> int:
    """Resolve a ``--jobs`` request: ``0`` means auto-detect the CPU count.

    The resolved value is what lands in telemetry — auto-detection is
    never silent.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = auto-detect cpu count)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class RunnerOutcome:
    """One cell's final disposition, in spec order."""

    spec: TaskSpec
    #: The executor's result payload, or None if the cell failed.
    result: Optional[Dict[str, Any]]
    #: "executed" | "cached" | "journal" | "failed" | "interrupted"
    status: str
    attempts: int = 1
    wall_s: float = 0.0
    error: Optional[str] = None
    #: Kernel events dispatched by the cell (None when the executor doesn't
    #: report one, or for cached/failed cells).
    events: Optional[int] = None
    #: Innocent pool-rebuild requeues — never burn the retry budget.
    requeues: int = 0
    #: Poison cell: quarantined in the journal, skipped on resume.
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell produced a result (fresh, cached, or journal)."""
        return self.result is not None


#: Backwards-compatible alias: the scheduling-state dataclass moved to
#: :mod:`repro.runner.executors` with the executor split.
_Cell = Cell


class ParallelRunner:
    """Run a grid of task specs with caching, journaling, and telemetry."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        mp_context: str = "spawn",
        progress: Optional[ProgressSink] = None,
        policy: Optional[RetryPolicy] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        watchdog: Optional[float] = None,
        handle_signals: bool = False,
        executor: Optional[CellExecutor] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if watchdog is not None and watchdog <= 0:
            raise ValueError("watchdog must be > 0 seconds")
        #: The requested value (0 = auto); ``jobs`` below is the resolved one.
        self.jobs_requested = jobs
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.timeout = timeout
        self.policy = policy if policy is not None else RetryPolicy(retries=retries)
        self.max_attempts = self.policy.max_attempts
        self.mp_context = mp_context
        self.progress = progress
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.resume = resume
        self.watchdog = watchdog
        self.handle_signals = handle_signals
        if executor is not None:
            self.executor: CellExecutor = executor
        elif self.jobs == 1:
            self.executor = InProcessExecutor()
        else:
            self.executor = LocalPoolExecutor(self.jobs, mp_context=mp_context)
        self.last_report: Optional[RunnerReport] = None
        self._interrupts = 0
        self._backoff_total = 0.0
        self._journal_broken = False

    # ------------------------------------------------------------- internals
    def _emit(self, message: str, **data: Any) -> None:
        if self.progress is not None:
            self.progress("runner", message, **data)

    def _from_cache(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        if self.cache is None:
            return None
        return self.cache.load(spec)

    def _store(self, spec: TaskSpec, result: Dict[str, Any]) -> None:
        if self.cache is None:
            return
        try:
            self.cache.store(spec, result)
        except OSError as exc:
            # A full disk must not fail a cell that already computed a
            # correct result: the cache degrades to re-execution on the
            # next run, the grid keeps its answer.
            self._emit(
                f"cache store failed for {spec.name} (degrading): {exc}",
                cell=spec.name,
                error=repr(exc),
            )

    def _journal(
        self, journal: Optional[RunJournal], record_kind: str, **fields: Any
    ) -> None:
        if journal is None or self._journal_broken:
            return
        try:
            journal.record(record_kind, **fields)
        except OSError as exc:
            # Fail closed: stop journaling entirely rather than appending
            # after a torn line (replay only tolerates a torn *tail*). The
            # grid completes with correct results; a later --resume simply
            # re-runs whatever the truncated journal no longer proves.
            self._journal_broken = True
            self._emit(
                f"journal write failed ({exc}); disabling journal for this "
                "run — results remain correct, resume will re-run unproven "
                "cells",
                error=repr(exc),
            )

    def _open_journal(
        self, specs: Sequence[TaskSpec], resume: Optional[Union[RunJournal, str, Path]]
    ) -> Tuple[Optional[RunJournal], Optional[JournalState]]:
        """Resolve the journal (if any) and the state to resume from.

        An explicitly passed ``resume`` journal (or path) always replays.
        Otherwise ``journal_dir`` selects the grid's canonical journal:
        replayed when the runner was built with ``resume=True``, rotated
        aside (fresh start, old file kept as ``.bak``) when not.
        """
        if resume is not None:
            journal = (
                resume if isinstance(resume, RunJournal) else RunJournal(resume)
            )
            return journal, journal.replay()
        if self.journal_dir is None:
            return None, None
        journal = RunJournal.for_grid(self.journal_dir, specs, self.policy)
        if self.resume:
            return journal, journal.replay()
        journal.rotate_stale()
        return journal, None

    @contextmanager
    def _signal_guard(self) -> Iterator[None]:
        """Count SIGINT/SIGTERM instead of dying (main thread + opt-in only).

        First signal: drain — finish in-flight cells, dispatch nothing new,
        journal the rest as interrupted. Second signal: abandon in-flight
        work immediately (it re-runs on resume).
        """
        if (
            not self.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return
        previous: Dict[int, Any] = {}

        def handler(signum: int, frame: Any) -> None:
            self._interrupts += 1
            mode = "draining in-flight cells" if self._interrupts == 1 else "abandoning"
            self._emit(f"signal {signum}: {mode}", signum=signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, handler)
        try:
            yield
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)

    # ------------------------------------------------------------------- run
    def run(
        self,
        specs: Sequence[TaskSpec],
        resume: Optional[Union[RunJournal, str, Path]] = None,
    ) -> List[RunnerOutcome]:
        """Execute every spec; outcomes are returned in spec order.

        ``resume`` (a :class:`RunJournal` or journal path) replays a prior
        run of this grid: completed cells are served from the journal,
        quarantined ones fail immediately, everything else executes.
        """
        started = time.perf_counter()
        self._interrupts = 0
        self._backoff_total = 0.0
        self._journal_broken = False
        if self.jobs_requested == 0:
            self._emit(
                f"jobs auto-detected: {self.jobs} (os.cpu_count)", jobs=self.jobs
            )
        if self.cache is not None and getattr(self.cache, "progress", None) is None:
            self.cache.progress = self.progress
        journal, replayed = self._open_journal(specs, resume)
        outcomes: List[Optional[RunnerOutcome]] = [None] * len(specs)

        with self._signal_guard():
            # Journal + cache pass first: settled cells never occupy a worker.
            pending: Deque[Cell] = deque()
            for index, spec in enumerate(specs):
                fingerprint = spec.fingerprint
                record = replayed.completed.get(fingerprint) if replayed else None
                if record is not None:
                    outcomes[index] = RunnerOutcome(
                        spec,
                        record.get("result"),
                        "journal",
                        attempts=int(record.get("attempts", 1)),
                        wall_s=float(record.get("wall_s", 0.0)),
                        events=record.get("events"),
                        requeues=int(record.get("requeues", 0)),
                    )
                    self._emit(
                        f"journal {spec.name}", cell=spec.name, status="journal"
                    )
                    continue
                record = replayed.quarantined.get(fingerprint) if replayed else None
                if record is not None:
                    outcomes[index] = RunnerOutcome(
                        spec,
                        None,
                        "failed",
                        attempts=int(record.get("attempts", 1)),
                        error=(record.get("error") or "poison cell")
                        + " [quarantined in journal]",
                        quarantined=True,
                    )
                    self._emit(
                        f"quarantined {spec.name} (journal)",
                        cell=spec.name,
                        status="failed",
                    )
                    continue
                cached = self._from_cache(spec)
                if cached is not None:
                    outcomes[index] = RunnerOutcome(spec, cached, "cached")
                    self._journal(
                        journal,
                        "done",
                        cell=fingerprint,
                        index=index,
                        attempts=0,
                        requeues=0,
                        wall_s=0.0,
                        events=None,
                        source="cached",
                        result=cached,
                    )
                    self._emit(f"cached {spec.name}", cell=spec.name, status="cached")
                else:
                    pending.append(Cell(index, spec))

            if pending and self._interrupts == 0:
                self.executor.drain(self, pending, outcomes, journal)

        interrupted = 0
        for index, spec in enumerate(specs):
            if outcomes[index] is None:
                interrupted += 1
                outcomes[index] = RunnerOutcome(
                    spec,
                    None,
                    "interrupted",
                    attempts=0,
                    error="interrupted before completion"
                    + (" (resumable from the run journal)" if journal else ""),
                )
        if interrupted:
            self._journal(
                journal,
                "interrupt",
                mode="abandon" if self._interrupts >= 2 else "drain",
                unfinished=interrupted,
            )
        else:
            self._journal(journal, "close", cells=len(specs))

        final = [o for o in outcomes if o is not None]
        assert len(final) == len(specs)
        self.last_report = self._report(
            final, time.perf_counter() - started, journal
        )
        self._emit(self.last_report.summary_line(), **self.last_report.counters())
        return final

    def results(self, specs: Sequence[TaskSpec]) -> List[Optional[Dict[str, Any]]]:
        """Convenience: :meth:`run`, reduced to the raw result payloads."""
        return [outcome.result for outcome in self.run(specs)]

    # ----------------------------------------------------------- disposition
    def _finalize(
        self,
        outcomes: List[Optional[RunnerOutcome]],
        cell: Cell,
        reply: Dict[str, Any],
        journal: Optional[RunJournal],
    ) -> None:
        outcomes[cell.index] = RunnerOutcome(
            cell.spec,
            reply["result"],
            "executed",
            attempts=cell.attempt + 1,
            wall_s=reply["wall_s"],
            events=reply.get("events"),
            requeues=cell.requeues,
        )
        self._store(cell.spec, reply["result"])
        self._journal(
            journal,
            "done",
            cell=cell.spec.fingerprint,
            index=cell.index,
            attempts=cell.attempt + 1,
            requeues=cell.requeues,
            wall_s=reply["wall_s"],
            events=reply.get("events"),
            source="executed",
            result=reply["result"],
        )
        self._emit(
            f"done {cell.spec.name}", cell=cell.spec.name, wall_s=reply["wall_s"]
        )

    def _handle_failure(
        self,
        pending: Deque[Cell],
        outcomes: List[Optional[RunnerOutcome]],
        cell: Cell,
        wall: float,
        journal: Optional[RunJournal],
        kind: str,
        error: Optional[str] = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        """Retry with backoff, fail fast, or fail-and-quarantine one cell.

        ``kind`` is "error" (the cell raised), "crash" (its worker died),
        or "hang" (timeout / watchdog kill). Deterministic errors skip the
        retry budget entirely; crash/hang cells that exhaust it are
        quarantined as poison.
        """
        name = cell.spec.name
        fingerprint = cell.spec.fingerprint
        error = error if error is not None else repr(exc)
        deterministic = (
            kind == "error"
            and exc is not None
            and self.policy.classify(exc) == "deterministic"
        )
        if not deterministic and cell.attempt + 1 < self.policy.max_attempts:
            delay = self.policy.delay(fingerprint, cell.attempt)
            self._backoff_total += delay
            self._journal(
                journal,
                "attempt",
                cell=fingerprint,
                attempt=cell.attempt,
                kind=kind,
                error=error,
                delay_s=round(delay, 4),
            )
            self._emit(
                f"retry {name}: {error}",
                cell=name,
                attempt=cell.attempt + 1,
                kind=kind,
                delay_s=delay,
            )
            cell.attempt += 1
            cell.not_before = time.monotonic() + delay
            pending.appendleft(cell)
            return
        quarantined = kind in ("crash", "hang")
        outcomes[cell.index] = RunnerOutcome(
            cell.spec,
            None,
            "failed",
            attempts=cell.attempt + 1,
            wall_s=wall,
            error=error,
            requeues=cell.requeues,
            quarantined=quarantined,
        )
        self._journal(
            journal,
            "quarantine" if quarantined else "failed",
            cell=fingerprint,
            index=cell.index,
            attempts=cell.attempt + 1,
            kind=kind,
            error=error,
        )
        self._emit(
            f"failed {name}: {error}",
            cell=name,
            status="failed",
            kind=kind,
            quarantined=quarantined,
        )

    # ------------------------------------------------------------- utilities
    def _sleep_interruptible(self, seconds: float) -> bool:
        """Sleep up to ``seconds``; False if a shutdown signal arrived."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            if self._interrupts:
                return False
            time.sleep(min(0.05, max(deadline - time.monotonic(), 0.0)))
        return not self._interrupts

    # ------------------------------------------------------------- reporting
    def _report(
        self,
        outcomes: List[RunnerOutcome],
        wall_s: float,
        journal: Optional[RunJournal],
    ) -> RunnerReport:
        report = RunnerReport(
            jobs=self.executor.slots,
            executor=self.executor.name,
            jobs_requested=self.jobs_requested,
            wall_s=wall_s,
            backoff_s=round(self._backoff_total, 4),
            journal=str(journal.path) if journal is not None else None,
        )
        for index, outcome in enumerate(outcomes):
            report.cells.append(
                CellTelemetry(
                    index=index,
                    label=outcome.spec.name,
                    kind=outcome.spec.kind,
                    fingerprint=outcome.spec.fingerprint,
                    status=outcome.status,
                    attempts=outcome.attempts,
                    wall_s=outcome.wall_s,
                    sim_s=(
                        sim_seconds_estimate(outcome.spec)
                        if outcome.status == "executed"
                        else 0.0
                    ),
                    error=outcome.error,
                    events=outcome.events if outcome.status == "executed" else None,
                    requeues=outcome.requeues,
                    quarantined=outcome.quarantined,
                )
            )
        return report
