"""The parallel experiment execution engine.

:class:`ParallelRunner` schedules :class:`~repro.runner.taskspec.TaskSpec`
cells over a ``ProcessPoolExecutor`` (spawn context by default, so workers
never inherit surprise state), with:

- a result cache consulted before any simulation happens;
- an optional **run journal** (:mod:`repro.runner.journal`): every
  dispatch/completion/failure is durably appended, so a grid killed hard
  (SIGKILL, OOM, reboot) resumes where it stopped — completed cells are
  served from the journal bit-identically, in-flight ones re-run;
- a :class:`~repro.runner.retry.RetryPolicy` with seeded exponential
  backoff and error classification: transient errors retry, deterministic
  :class:`~repro.runner.retry.RunError`-style exceptions fail fast, and
  poison cells (workers that keep dying or hanging) are quarantined in
  the journal after the budget;
- a bounded in-flight window (= ``jobs``), so a per-task timeout measured
  from submission is a fair bound on actual run time;
- crash containment with honest attribution: a dead worker breaks the
  pool; the engine rebuilds it and re-dispatches the in-flight cells *one
  at a time* until the offender reveals itself — innocent bystanders are
  re-queued (``requeues``) without burning their retry budget;
- a **watchdog** (optional): workers heartbeat a sentinel file with the
  live simulator's progress; a cell whose worker stops beating (frozen or
  dead) or whose simulation stops advancing (hung) is killed and retried
  long before the coarse per-cell timeout;
- graceful shutdown: with ``handle_signals=True``, the first
  SIGINT/SIGTERM drains in-flight cells and journals the rest as
  interrupted (resumable); a second signal abandons in-flight work
  immediately. Either way the journal and telemetry are flushed;
- deterministic result ordering: outcomes come back in spec order no matter
  what order cells finished in.

``jobs=1`` is the degenerate serial path: cells run in-process through the
same :func:`~repro.runner.execute.run_task`, so results are bit-identical
to the parallel path and to the historical serial drivers.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.runner.cache import ResultCache
from repro.runner.execute import run_task, sim_seconds_estimate
from repro.runner.journal import JournalState, RunJournal
from repro.runner.retry import RetryPolicy
from repro.runner.taskspec import TaskSpec
from repro.runner.telemetry import CellTelemetry, RunnerReport

#: Signature of a progress sink: ``(category, message, **data)`` — matches
#: :meth:`repro.sim.trace.Tracer.emit`, so a Tracer can be plugged directly.
ProgressSink = Callable[..., None]


@dataclass
class RunnerOutcome:
    """One cell's final disposition, in spec order."""

    spec: TaskSpec
    #: The executor's result payload, or None if the cell failed.
    result: Optional[Dict[str, Any]]
    #: "executed" | "cached" | "journal" | "failed" | "interrupted"
    status: str
    attempts: int = 1
    wall_s: float = 0.0
    error: Optional[str] = None
    #: Kernel events dispatched by the cell (None when the executor doesn't
    #: report one, or for cached/failed cells).
    events: Optional[int] = None
    #: Innocent pool-rebuild requeues — never burn the retry budget.
    requeues: int = 0
    #: Poison cell: quarantined in the journal, skipped on resume.
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell produced a result (fresh, cached, or journal)."""
        return self.result is not None


@dataclass
class _Cell:
    """Mutable scheduling state of one not-yet-final cell."""

    index: int
    spec: TaskSpec
    #: Failed attempts charged so far (the retry budget consumed).
    attempt: int = 0
    #: Innocent pool-rebuild requeues suffered (budget NOT consumed).
    requeues: int = 0
    #: Monotonic time before which the cell must not be dispatched (backoff).
    not_before: float = 0.0


#: Sentinel meaning "no heartbeat progress sample read yet".
_NO_PROGRESS = object()


@dataclass
class _Flight:
    """One submitted future's bookkeeping."""

    cell: _Cell
    deadline: float
    submitted: float
    heartbeat: Optional[str] = None
    progress: Any = _NO_PROGRESS
    progress_at: float = 0.0


class ParallelRunner:
    """Run a grid of task specs with caching, journaling, and telemetry."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        mp_context: str = "spawn",
        progress: Optional[ProgressSink] = None,
        policy: Optional[RetryPolicy] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        watchdog: Optional[float] = None,
        handle_signals: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if watchdog is not None and watchdog <= 0:
            raise ValueError("watchdog must be > 0 seconds")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.policy = policy if policy is not None else RetryPolicy(retries=retries)
        self.max_attempts = self.policy.max_attempts
        self.mp_context = mp_context
        self.progress = progress
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.resume = resume
        self.watchdog = watchdog
        self.handle_signals = handle_signals
        self.last_report: Optional[RunnerReport] = None
        self._interrupts = 0
        self._backoff_total = 0.0

    # ------------------------------------------------------------- internals
    def _emit(self, message: str, **data: Any) -> None:
        if self.progress is not None:
            self.progress("runner", message, **data)

    def _from_cache(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        if self.cache is None:
            return None
        return self.cache.load(spec)

    def _store(self, spec: TaskSpec, result: Dict[str, Any]) -> None:
        if self.cache is not None:
            self.cache.store(spec, result)

    @staticmethod
    def _journal(
        journal: Optional[RunJournal], record_kind: str, **fields: Any
    ) -> None:
        if journal is not None:
            journal.record(record_kind, **fields)

    def _open_journal(
        self, specs: Sequence[TaskSpec], resume: Optional[Union[RunJournal, str, Path]]
    ) -> Tuple[Optional[RunJournal], Optional[JournalState]]:
        """Resolve the journal (if any) and the state to resume from.

        An explicitly passed ``resume`` journal (or path) always replays.
        Otherwise ``journal_dir`` selects the grid's canonical journal:
        replayed when the runner was built with ``resume=True``, rotated
        aside (fresh start, old file kept as ``.bak``) when not.
        """
        if resume is not None:
            journal = (
                resume if isinstance(resume, RunJournal) else RunJournal(resume)
            )
            return journal, journal.replay()
        if self.journal_dir is None:
            return None, None
        journal = RunJournal.for_grid(self.journal_dir, specs, self.policy)
        if self.resume:
            return journal, journal.replay()
        journal.rotate_stale()
        return journal, None

    @contextmanager
    def _signal_guard(self) -> Iterator[None]:
        """Count SIGINT/SIGTERM instead of dying (main thread + opt-in only).

        First signal: drain — finish in-flight cells, dispatch nothing new,
        journal the rest as interrupted. Second signal: abandon in-flight
        work immediately (it re-runs on resume).
        """
        if (
            not self.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return
        previous: Dict[int, Any] = {}

        def handler(signum: int, frame: Any) -> None:
            self._interrupts += 1
            mode = "draining in-flight cells" if self._interrupts == 1 else "abandoning"
            self._emit(f"signal {signum}: {mode}", signum=signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, handler)
        try:
            yield
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)

    # ------------------------------------------------------------------- run
    def run(
        self,
        specs: Sequence[TaskSpec],
        resume: Optional[Union[RunJournal, str, Path]] = None,
    ) -> List[RunnerOutcome]:
        """Execute every spec; outcomes are returned in spec order.

        ``resume`` (a :class:`RunJournal` or journal path) replays a prior
        run of this grid: completed cells are served from the journal,
        quarantined ones fail immediately, everything else executes.
        """
        started = time.perf_counter()
        self._interrupts = 0
        self._backoff_total = 0.0
        if self.cache is not None and getattr(self.cache, "progress", None) is None:
            self.cache.progress = self.progress
        journal, replayed = self._open_journal(specs, resume)
        outcomes: List[Optional[RunnerOutcome]] = [None] * len(specs)

        with self._signal_guard():
            # Journal + cache pass first: settled cells never occupy a worker.
            pending: Deque[_Cell] = deque()
            for index, spec in enumerate(specs):
                fingerprint = spec.fingerprint
                record = replayed.completed.get(fingerprint) if replayed else None
                if record is not None:
                    outcomes[index] = RunnerOutcome(
                        spec,
                        record.get("result"),
                        "journal",
                        attempts=int(record.get("attempts", 1)),
                        wall_s=float(record.get("wall_s", 0.0)),
                        events=record.get("events"),
                        requeues=int(record.get("requeues", 0)),
                    )
                    self._emit(
                        f"journal {spec.name}", cell=spec.name, status="journal"
                    )
                    continue
                record = replayed.quarantined.get(fingerprint) if replayed else None
                if record is not None:
                    outcomes[index] = RunnerOutcome(
                        spec,
                        None,
                        "failed",
                        attempts=int(record.get("attempts", 1)),
                        error=(record.get("error") or "poison cell")
                        + " [quarantined in journal]",
                        quarantined=True,
                    )
                    self._emit(
                        f"quarantined {spec.name} (journal)",
                        cell=spec.name,
                        status="failed",
                    )
                    continue
                cached = self._from_cache(spec)
                if cached is not None:
                    outcomes[index] = RunnerOutcome(spec, cached, "cached")
                    self._journal(
                        journal,
                        "done",
                        cell=fingerprint,
                        index=index,
                        attempts=0,
                        requeues=0,
                        wall_s=0.0,
                        events=None,
                        source="cached",
                        result=cached,
                    )
                    self._emit(f"cached {spec.name}", cell=spec.name, status="cached")
                else:
                    pending.append(_Cell(index, spec))

            if pending and self._interrupts == 0:
                if self.jobs == 1:
                    self._run_serial(pending, outcomes, journal)
                else:
                    self._run_parallel(pending, outcomes, journal)

        interrupted = 0
        for index, spec in enumerate(specs):
            if outcomes[index] is None:
                interrupted += 1
                outcomes[index] = RunnerOutcome(
                    spec,
                    None,
                    "interrupted",
                    attempts=0,
                    error="interrupted before completion"
                    + (" (resumable from the run journal)" if journal else ""),
                )
        if journal is not None:
            if interrupted:
                journal.record(
                    "interrupt",
                    mode="abandon" if self._interrupts >= 2 else "drain",
                    unfinished=interrupted,
                )
            else:
                journal.record("close", cells=len(specs))

        final = [o for o in outcomes if o is not None]
        assert len(final) == len(specs)
        self.last_report = self._report(
            final, time.perf_counter() - started, journal
        )
        self._emit(self.last_report.summary_line(), **self.last_report.counters())
        return final

    def results(self, specs: Sequence[TaskSpec]) -> List[Optional[Dict[str, Any]]]:
        """Convenience: :meth:`run`, reduced to the raw result payloads."""
        return [outcome.result for outcome in self.run(specs)]

    # ----------------------------------------------------------- disposition
    def _finalize(
        self,
        outcomes: List[Optional[RunnerOutcome]],
        cell: _Cell,
        reply: Dict[str, Any],
        journal: Optional[RunJournal],
    ) -> None:
        outcomes[cell.index] = RunnerOutcome(
            cell.spec,
            reply["result"],
            "executed",
            attempts=cell.attempt + 1,
            wall_s=reply["wall_s"],
            events=reply.get("events"),
            requeues=cell.requeues,
        )
        self._store(cell.spec, reply["result"])
        self._journal(
            journal,
            "done",
            cell=cell.spec.fingerprint,
            index=cell.index,
            attempts=cell.attempt + 1,
            requeues=cell.requeues,
            wall_s=reply["wall_s"],
            events=reply.get("events"),
            source="executed",
            result=reply["result"],
        )
        self._emit(
            f"done {cell.spec.name}", cell=cell.spec.name, wall_s=reply["wall_s"]
        )

    def _handle_failure(
        self,
        pending: Deque[_Cell],
        outcomes: List[Optional[RunnerOutcome]],
        cell: _Cell,
        wall: float,
        journal: Optional[RunJournal],
        kind: str,
        error: Optional[str] = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        """Retry with backoff, fail fast, or fail-and-quarantine one cell.

        ``kind`` is "error" (the cell raised), "crash" (its worker died),
        or "hang" (timeout / watchdog kill). Deterministic errors skip the
        retry budget entirely; crash/hang cells that exhaust it are
        quarantined as poison.
        """
        name = cell.spec.name
        fingerprint = cell.spec.fingerprint
        error = error if error is not None else repr(exc)
        deterministic = (
            kind == "error"
            and exc is not None
            and self.policy.classify(exc) == "deterministic"
        )
        if not deterministic and cell.attempt + 1 < self.policy.max_attempts:
            delay = self.policy.delay(fingerprint, cell.attempt)
            self._backoff_total += delay
            self._journal(
                journal,
                "attempt",
                cell=fingerprint,
                attempt=cell.attempt,
                kind=kind,
                error=error,
                delay_s=round(delay, 4),
            )
            self._emit(
                f"retry {name}: {error}",
                cell=name,
                attempt=cell.attempt + 1,
                kind=kind,
                delay_s=delay,
            )
            cell.attempt += 1
            cell.not_before = time.monotonic() + delay
            pending.appendleft(cell)
            return
        quarantined = kind in ("crash", "hang")
        outcomes[cell.index] = RunnerOutcome(
            cell.spec,
            None,
            "failed",
            attempts=cell.attempt + 1,
            wall_s=wall,
            error=error,
            requeues=cell.requeues,
            quarantined=quarantined,
        )
        self._journal(
            journal,
            "quarantine" if quarantined else "failed",
            cell=fingerprint,
            index=cell.index,
            attempts=cell.attempt + 1,
            kind=kind,
            error=error,
        )
        self._emit(
            f"failed {name}: {error}",
            cell=name,
            status="failed",
            kind=kind,
            quarantined=quarantined,
        )

    # ---------------------------------------------------------------- serial
    def _sleep_interruptible(self, seconds: float) -> bool:
        """Sleep up to ``seconds``; False if a shutdown signal arrived."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            if self._interrupts:
                return False
            time.sleep(min(0.05, max(deadline - time.monotonic(), 0.0)))
        return not self._interrupts

    def _run_serial(
        self,
        pending: Deque[_Cell],
        outcomes: List[Optional[RunnerOutcome]],
        journal: Optional[RunJournal],
    ) -> None:
        while pending:
            if self._interrupts:
                return
            cell = pending.popleft()
            wait_s = cell.not_before - time.monotonic()
            if wait_s > 0 and not self._sleep_interruptible(wait_s):
                pending.appendleft(cell)
                return
            self._emit(f"run {cell.spec.name}", cell=cell.spec.name, attempt=cell.attempt)
            self._journal(
                journal,
                "dispatch",
                cell=cell.spec.fingerprint,
                index=cell.index,
                attempt=cell.attempt,
            )
            cell_started = time.perf_counter()
            try:
                reply = run_task(
                    {"spec": cell.spec.to_dict(), "attempt": cell.attempt},
                    in_process=True,
                )
            except Exception as exc:  # injected faults / executor bugs
                self._handle_failure(
                    pending,
                    outcomes,
                    cell,
                    time.perf_counter() - cell_started,
                    journal,
                    kind="error",
                    exc=exc,
                )
                continue
            self._finalize(outcomes, cell, reply, journal)

    # -------------------------------------------------------------- parallel
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context(self.mp_context),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly stop a pool whose workers may be hung or dead."""
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
            except Exception:  # already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _pick(
        self,
        pending: Deque[_Cell],
        suspects: Set[str],
        in_flight: Dict[Future, _Flight],
        now: float,
    ) -> Optional[_Cell]:
        """Next dispatchable cell, honouring backoff and crash isolation.

        While ``suspects`` is non-empty (a pool break with ambiguous
        attribution), cells are dispatched one at a time so the next break
        unambiguously names its offender.
        """
        if suspects and not any(
            c.spec.fingerprint in suspects for c in pending
        ):
            suspects.clear()  # every suspect reached a final disposition
        restrict = bool(suspects)
        if restrict and in_flight:
            return None
        for position, cell in enumerate(pending):
            if restrict and cell.spec.fingerprint not in suspects:
                continue
            if cell.not_before > now:
                if restrict:
                    return None  # keep isolation strict even across backoff
                continue
            del pending[position]
            return cell
        return None

    def _submit_ready(
        self,
        pool: ProcessPoolExecutor,
        pending: Deque[_Cell],
        in_flight: Dict[Future, _Flight],
        suspects: Set[str],
        heartbeat_dir: Optional[str],
        heartbeat_s: float,
        journal: Optional[RunJournal],
    ) -> ProcessPoolExecutor:
        while pending and len(in_flight) < self.jobs:
            now = time.monotonic()
            cell = self._pick(pending, suspects, in_flight, now)
            if cell is None:
                break
            deadline = now + self.timeout if self.timeout is not None else float("inf")
            payload: Dict[str, Any] = {
                "spec": cell.spec.to_dict(),
                "attempt": cell.attempt,
            }
            heartbeat_path = None
            if heartbeat_dir is not None:
                heartbeat_path = os.path.join(
                    heartbeat_dir, f"hb-{cell.index}-{cell.attempt}.json"
                )
                payload["heartbeat"] = heartbeat_path
                payload["heartbeat_s"] = heartbeat_s
            self._emit(f"run {cell.spec.name}", cell=cell.spec.name, attempt=cell.attempt)
            self._journal(
                journal,
                "dispatch",
                cell=cell.spec.fingerprint,
                index=cell.index,
                attempt=cell.attempt,
            )
            try:
                future = pool.submit(run_task, payload)
            except BrokenProcessPool:
                # The pool died between completions. If futures are still in
                # flight their breakage is handled by the main loop;
                # otherwise rebuild right here so the loop can't spin.
                pending.appendleft(cell)
                if not in_flight:
                    self._kill_pool(pool)
                    pool = self._new_pool()
                break
            in_flight[future] = _Flight(
                cell, deadline, now, heartbeat_path, _NO_PROGRESS, now
            )
        return pool

    def _watchdog_verdict(self, flight: _Flight, now: float) -> Optional[str]:
        """Why this flight should be killed, or None while it looks alive.

        Distinguishes the failure modes: *no heartbeat file* / *stale
        heartbeat* means the worker is dead or frozen; *fresh heartbeat
        with flat progress* means the simulation itself is hung.
        """
        window = self.watchdog
        assert window is not None and flight.heartbeat is not None
        try:
            stat = os.stat(flight.heartbeat)
        except OSError:
            # Spawned workers import the package before the first beat;
            # give them a doubled grace window to appear at all.
            if now - flight.submitted > 2 * window:
                return (
                    f"no heartbeat within {2 * window:.1f}s of dispatch "
                    "(worker presumed dead)"
                )
            return None
        staleness = time.time() - stat.st_mtime
        if staleness > window:
            return f"heartbeat lost for {staleness:.1f}s (worker hung or dead)"
        try:
            beat = json.loads(Path(flight.heartbeat).read_text())
        except (OSError, ValueError):  # racing the atomic replace
            return None
        progress = (beat.get("events"), beat.get("sim_t"))
        if flight.progress is _NO_PROGRESS or progress != flight.progress:
            flight.progress = progress
            flight.progress_at = now
            return None
        if now - flight.progress_at > window:
            return (
                f"stalled: no simulator progress for "
                f"{now - flight.progress_at:.1f}s (hung cell)"
            )
        return None

    def _run_parallel(
        self,
        pending: Deque[_Cell],
        outcomes: List[Optional[RunnerOutcome]],
        journal: Optional[RunJournal],
    ) -> None:
        pool = self._new_pool()
        in_flight: Dict[Future, _Flight] = {}
        suspects: Set[str] = set()
        heartbeat_dir = (
            tempfile.mkdtemp(prefix="repro-heartbeat-")
            if self.watchdog is not None
            else None
        )
        heartbeat_s = min(1.0, (self.watchdog or 4.0) / 4.0)
        tick = 0.1 if self.timeout is None else min(0.1, self.timeout / 4)
        try:
            while pending or in_flight:
                if self._interrupts >= 2:
                    return  # abandon: in-flight cells stay unfinished
                if self._interrupts == 0:
                    pool = self._submit_ready(
                        pool, pending, in_flight, suspects,
                        heartbeat_dir, heartbeat_s, journal,
                    )
                elif not in_flight:
                    return  # drained
                if not in_flight:
                    # Every dispatchable cell is backing off; nap briefly.
                    soonest = min(cell.not_before for cell in pending)
                    time.sleep(
                        min(max(soonest - time.monotonic(), 0.0), 0.25) or 0.01
                    )
                    continue

                done, _ = wait(in_flight, timeout=tick, return_when=FIRST_COMPLETED)
                broken: List[_Flight] = []
                for future in done:
                    flight = in_flight.pop(future)
                    cell = flight.cell
                    exc = future.exception()
                    if exc is None:
                        self._finalize(outcomes, cell, future.result(), journal)
                        suspects.discard(cell.spec.fingerprint)
                    elif isinstance(exc, BrokenProcessPool):
                        broken.append(flight)
                    else:
                        self._handle_failure(
                            pending,
                            outcomes,
                            cell,
                            time.monotonic() - flight.submitted,
                            journal,
                            kind="error",
                            exc=exc,
                        )
                        if outcomes[cell.index] is not None:
                            suspects.discard(cell.spec.fingerprint)

                if broken:
                    # Everything still in flight shares the dead pool.
                    casualties = broken + list(in_flight.values())
                    in_flight.clear()
                    self._kill_pool(pool)
                    now = time.monotonic()
                    if len(casualties) == 1:
                        # Sole occupant: attribution is certain — charge it.
                        flight = casualties[0]
                        self._handle_failure(
                            pending,
                            outcomes,
                            flight.cell,
                            now - flight.submitted,
                            journal,
                            kind="crash",
                            error="worker process died (BrokenProcessPool)",
                        )
                    else:
                        # Ambiguous: requeue everyone without burning budget
                        # and isolate; the next break names its offender.
                        for flight in sorted(
                            casualties, key=lambda f: f.cell.index, reverse=True
                        ):
                            cell = flight.cell
                            cell.requeues += 1
                            suspects.add(cell.spec.fingerprint)
                            self._journal(
                                journal,
                                "requeue",
                                cell=cell.spec.fingerprint,
                                requeues=cell.requeues,
                                reason="pool broken (sibling worker died)",
                            )
                            self._emit(
                                f"requeue {cell.spec.name} (pool broken, "
                                "isolating suspects)",
                                cell=cell.spec.name,
                            )
                            pending.appendleft(cell)
                    pool = self._new_pool()
                    continue

                now = time.monotonic()
                expired: Dict[Future, str] = {}
                for future, flight in in_flight.items():
                    if now > flight.deadline:
                        expired[future] = f"timed out after {self.timeout}s"
                    elif heartbeat_dir is not None and flight.heartbeat:
                        verdict = self._watchdog_verdict(flight, now)
                        if verdict is not None:
                            expired[future] = verdict
                if expired:
                    # There is no portable way to interrupt one worker, so
                    # the pool dies; offenders are charged, innocent
                    # bystanders are re-queued without burning budget.
                    self._kill_pool(pool)
                    for future, flight in in_flight.items():
                        cell = flight.cell
                        if future in expired:
                            self._handle_failure(
                                pending,
                                outcomes,
                                cell,
                                now - flight.submitted,
                                journal,
                                kind="hang",
                                error=expired[future],
                            )
                        else:
                            cell.requeues += 1
                            self._journal(
                                journal,
                                "requeue",
                                cell=cell.spec.fingerprint,
                                requeues=cell.requeues,
                                reason="pool restarted (sibling killed)",
                            )
                            self._emit(
                                f"requeue {cell.spec.name} (pool restarted)",
                                cell=cell.spec.name,
                            )
                            pending.appendleft(cell)
                    in_flight.clear()
                    pool = self._new_pool()
        finally:
            self._kill_pool(pool)
            if heartbeat_dir is not None:
                shutil.rmtree(heartbeat_dir, ignore_errors=True)

    # ------------------------------------------------------------- reporting
    def _report(
        self,
        outcomes: List[RunnerOutcome],
        wall_s: float,
        journal: Optional[RunJournal],
    ) -> RunnerReport:
        report = RunnerReport(
            jobs=self.jobs,
            wall_s=wall_s,
            backoff_s=round(self._backoff_total, 4),
            journal=str(journal.path) if journal is not None else None,
        )
        for index, outcome in enumerate(outcomes):
            report.cells.append(
                CellTelemetry(
                    index=index,
                    label=outcome.spec.name,
                    kind=outcome.spec.kind,
                    fingerprint=outcome.spec.fingerprint,
                    status=outcome.status,
                    attempts=outcome.attempts,
                    wall_s=outcome.wall_s,
                    sim_s=(
                        sim_seconds_estimate(outcome.spec)
                        if outcome.status == "executed"
                        else 0.0
                    ),
                    error=outcome.error,
                    events=outcome.events if outcome.status == "executed" else None,
                    requeues=outcome.requeues,
                    quarantined=outcome.quarantined,
                )
            )
        return report
