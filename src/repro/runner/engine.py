"""The parallel experiment execution engine.

:class:`ParallelRunner` schedules :class:`~repro.runner.taskspec.TaskSpec`
cells over a ``ProcessPoolExecutor`` (spawn context by default, so workers
never inherit surprise state), with:

- a result cache consulted before any simulation happens;
- a bounded in-flight window (= ``jobs``), so a per-task timeout measured
  from submission is a fair bound on actual run time;
- crash containment: a worker that dies (segfault, ``os._exit``) breaks the
  pool; the engine kills and rebuilds it, re-queues the in-flight cells, and
  charges an attempt to each — a poisoned cell fails alone after its retry
  budget, the rest of the grid completes;
- hang containment: a cell past its timeout gets the same treatment (the
  pool is killed — there is no portable way to interrupt one worker);
- deterministic result ordering: outcomes come back in spec order no matter
  what order cells finished in.

``jobs=1`` is the degenerate serial path: cells run in-process through the
same :func:`~repro.runner.execute.run_task`, so results are bit-identical
to the parallel path and to the historical serial drivers.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.execute import run_task, sim_seconds_estimate
from repro.runner.taskspec import TaskSpec
from repro.runner.telemetry import CellTelemetry, RunnerReport

#: Signature of a progress sink: ``(category, message, **data)`` — matches
#: :meth:`repro.sim.trace.Tracer.emit`, so a Tracer can be plugged directly.
ProgressSink = Callable[..., None]


@dataclass
class RunnerOutcome:
    """One cell's final disposition, in spec order."""

    spec: TaskSpec
    #: The executor's result payload, or None if the cell failed.
    result: Optional[Dict[str, Any]]
    #: "executed" | "cached" | "failed"
    status: str
    attempts: int = 1
    wall_s: float = 0.0
    error: Optional[str] = None
    #: Kernel events dispatched by the cell (None when the executor doesn't
    #: report one, or for cached/failed cells).
    events: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a result (fresh or cached)."""
        return self.result is not None


class ParallelRunner:
    """Run a grid of task specs with caching, retries, and telemetry."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        mp_context: str = "spawn",
        progress: Optional[ProgressSink] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.max_attempts = retries + 1
        self.mp_context = mp_context
        self.progress = progress
        self.last_report: Optional[RunnerReport] = None

    # ------------------------------------------------------------- internals
    def _emit(self, message: str, **data: Any) -> None:
        if self.progress is not None:
            self.progress("runner", message, **data)

    def _from_cache(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        if self.cache is None:
            return None
        return self.cache.load(spec)

    def _store(self, spec: TaskSpec, result: Dict[str, Any]) -> None:
        if self.cache is not None:
            self.cache.store(spec, result)

    # ------------------------------------------------------------------- run
    def run(self, specs: Sequence[TaskSpec]) -> List[RunnerOutcome]:
        """Execute every spec; outcomes are returned in spec order."""
        started = time.perf_counter()
        outcomes: List[Optional[RunnerOutcome]] = [None] * len(specs)

        # Cache pass first: cached cells never occupy a worker.
        pending: deque = deque()  # (index, spec, attempt)
        for index, spec in enumerate(specs):
            cached = self._from_cache(spec)
            if cached is not None:
                outcomes[index] = RunnerOutcome(spec, cached, "cached")
                self._emit(f"cached {spec.name}", cell=spec.name, status="cached")
            else:
                pending.append((index, spec, 0))

        if pending:
            if self.jobs == 1:
                self._run_serial(pending, outcomes)
            else:
                self._run_parallel(pending, outcomes)

        final = [o for o in outcomes if o is not None]
        assert len(final) == len(specs)
        self.last_report = self._report(final, time.perf_counter() - started)
        self._emit(self.last_report.summary_line(), **self.last_report.counters())
        return final

    def results(self, specs: Sequence[TaskSpec]) -> List[Optional[Dict[str, Any]]]:
        """Convenience: :meth:`run`, reduced to the raw result payloads."""
        return [outcome.result for outcome in self.run(specs)]

    # ---------------------------------------------------------------- serial
    def _run_serial(
        self, pending: deque, outcomes: List[Optional[RunnerOutcome]]
    ) -> None:
        while pending:
            index, spec, attempt = pending.popleft()
            self._emit(f"run {spec.name}", cell=spec.name, attempt=attempt)
            cell_started = time.perf_counter()
            try:
                reply = run_task(
                    {"spec": spec.to_dict(), "attempt": attempt}, in_process=True
                )
            except Exception as exc:  # injected faults / executor bugs
                wall = time.perf_counter() - cell_started
                self._retry_or_fail(
                    pending, outcomes, index, spec, attempt, wall, repr(exc)
                )
                continue
            outcomes[index] = RunnerOutcome(
                spec, reply["result"], "executed", attempt + 1, reply["wall_s"],
                events=reply.get("events"),
            )
            self._store(spec, reply["result"])
            self._emit(f"done {spec.name}", cell=spec.name, wall_s=reply["wall_s"])

    def _retry_or_fail(
        self,
        pending: deque,
        outcomes: List[Optional[RunnerOutcome]],
        index: int,
        spec: TaskSpec,
        attempt: int,
        wall: float,
        error: str,
    ) -> None:
        if attempt + 1 < self.max_attempts:
            self._emit(
                f"retry {spec.name}: {error}", cell=spec.name, attempt=attempt + 1
            )
            pending.appendleft((index, spec, attempt + 1))
        else:
            outcomes[index] = RunnerOutcome(
                spec, None, "failed", attempt + 1, wall, error
            )
            self._emit(f"failed {spec.name}: {error}", cell=spec.name, status="failed")

    # -------------------------------------------------------------- parallel
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context(self.mp_context),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly stop a pool whose workers may be hung or dead."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:  # already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_parallel(
        self, pending: deque, outcomes: List[Optional[RunnerOutcome]]
    ) -> None:
        # index, spec, attempt, deadline, submitted-at (for failed-cell wall_s)
        InFlight = Tuple[int, TaskSpec, int, float, float]
        pool = self._new_pool()
        in_flight: Dict[Future, InFlight] = {}
        tick = 0.1 if self.timeout is None else min(0.1, self.timeout / 4)
        try:
            while pending or in_flight:
                while pending and len(in_flight) < self.jobs:
                    index, spec, attempt = pending.popleft()
                    deadline = (
                        time.monotonic() + self.timeout
                        if self.timeout is not None
                        else float("inf")
                    )
                    self._emit(f"run {spec.name}", cell=spec.name, attempt=attempt)
                    try:
                        future = pool.submit(
                            run_task, {"spec": spec.to_dict(), "attempt": attempt}
                        )
                    except BrokenProcessPool:
                        # The pool died between completions. If futures are
                        # still in flight their breakage is handled below;
                        # otherwise rebuild right here so the loop can't spin.
                        pending.appendleft((index, spec, attempt))
                        if not in_flight:
                            self._kill_pool(pool)
                            pool = self._new_pool()
                        break
                    in_flight[future] = (index, spec, attempt, deadline, time.monotonic())

                done, _ = wait(in_flight, timeout=tick, return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    index, spec, attempt, _deadline, submitted = in_flight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        reply = future.result()
                        outcomes[index] = RunnerOutcome(
                            spec, reply["result"], "executed", attempt + 1,
                            reply["wall_s"], events=reply.get("events"),
                        )
                        self._store(spec, reply["result"])
                        self._emit(
                            f"done {spec.name}", cell=spec.name, wall_s=reply["wall_s"]
                        )
                    elif isinstance(exc, BrokenProcessPool):
                        # A worker died; attribution is impossible, so every
                        # broken in-flight cell is charged an attempt below.
                        pool_broken = True
                        self._retry_or_fail(
                            pending, outcomes, index, spec, attempt,
                            time.monotonic() - submitted,
                            "worker process died (BrokenProcessPool)",
                        )
                    else:
                        self._retry_or_fail(
                            pending, outcomes, index, spec, attempt,
                            time.monotonic() - submitted, repr(exc),
                        )

                now = time.monotonic()
                timed_out = [f for f, entry in in_flight.items() if now > entry[3]]
                if pool_broken or timed_out:
                    self._kill_pool(pool)
                    for future, (
                        index, spec, attempt, _deadline, submitted
                    ) in in_flight.items():
                        if pool_broken or future in timed_out:
                            # Offender or co-casualty of a dead pool: charge
                            # an attempt (the work is lost either way).
                            self._retry_or_fail(
                                pending, outcomes, index, spec, attempt,
                                now - submitted,
                                f"timed out after {self.timeout}s"
                                if future in timed_out
                                else "worker process died (BrokenProcessPool)",
                            )
                        else:
                            # Innocent bystander of a timeout kill: re-queue
                            # without charging an attempt.
                            self._emit(
                                f"requeue {spec.name} (pool restarted)",
                                cell=spec.name,
                            )
                            pending.appendleft((index, spec, attempt))
                    in_flight.clear()
                    pool = self._new_pool()
        finally:
            self._kill_pool(pool)

    # ------------------------------------------------------------- reporting
    def _report(self, outcomes: List[RunnerOutcome], wall_s: float) -> RunnerReport:
        report = RunnerReport(jobs=self.jobs, wall_s=wall_s)
        for index, outcome in enumerate(outcomes):
            report.cells.append(
                CellTelemetry(
                    index=index,
                    label=outcome.spec.name,
                    kind=outcome.spec.kind,
                    fingerprint=outcome.spec.fingerprint,
                    status=outcome.status,
                    attempts=outcome.attempts,
                    wall_s=outcome.wall_s,
                    sim_s=(
                        sim_seconds_estimate(outcome.spec)
                        if outcome.status == "executed"
                        else 0.0
                    ),
                    error=outcome.error,
                    events=outcome.events if outcome.status == "executed" else None,
                )
            )
        return report
