"""The run journal: an append-only manifest that makes grids resumable.

One journal file per *grid* — a JSONL manifest named by the grid
fingerprint (hash of the ordered cell fingerprints plus the retry policy),
living under a ``journal_dir``. Every state transition of every cell is
appended as one JSON line and fsynced, so after a SIGKILL / OOM / reboot
the journal is an exact prefix of the run:

- ``open``      — grid metadata (cell count, versions), written once;
- ``dispatch``  — a cell was handed to a worker (attempt number included);
- ``done``      — a cell completed; the record carries the **full result
  payload**, so resume never depends on the result cache being intact;
- ``attempt``   — a failed attempt that will be retried (kind + backoff);
- ``requeue``   — an innocent cell re-queued after a pool rebuild;
- ``failed``    — a cell exhausted its budget or failed deterministically;
- ``quarantine`` — a poison cell (worker kept dying/hanging): a resumed
  grid reports it failed immediately instead of re-poisoning the pool;
- ``interrupt`` / ``close`` — how the run ended.

:meth:`RunJournal.replay` folds the record stream into a
:class:`JournalState`; a torn final line (the crash happened mid-append)
is tolerated and ignored. ``ParallelRunner.run(..., resume=journal)`` then
skips completed cells (serving their journaled results bit-identically),
skips quarantined ones, and re-runs everything else — including cells that
were in flight when the previous run died.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set, Union

from repro.havoc import fs as havocfs
from repro.runner.retry import RetryPolicy
from repro.runner.taskspec import TaskSpec, fingerprint_of
from repro.sim.simulator import KERNEL_BEHAVIOR_VERSION
from repro.version import __version__

#: Bump when the journal record format changes incompatibly; folded into
#: the grid fingerprint so old journals become unreachable, not misread.
JOURNAL_SCHEMA = 1


def grid_fingerprint(specs: Sequence[TaskSpec], policy: RetryPolicy) -> str:
    """Content hash identifying one grid: ordered cells + retry policy.

    ``jobs`` is deliberately excluded — the engine guarantees results are
    identical across worker counts, so a grid journaled at ``jobs=4`` may
    be resumed at ``jobs=1`` (or vice versa).
    """
    return fingerprint_of(
        {
            "schema": JOURNAL_SCHEMA,
            "cells": [spec.fingerprint for spec in specs],
            "policy": policy.to_dict(),
        }
    )


@dataclass
class JournalState:
    """What a replayed journal says about a grid."""

    grid: Optional[str] = None
    #: fingerprint -> the full ``done`` record (result payload included).
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: fingerprint -> the ``quarantine`` record (error + attempts).
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: fingerprint -> the final ``failed`` record (informational: failed
    #: cells are re-run on resume, quarantined ones are not).
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Cells dispatched but never finished — in flight at the crash.
    in_flight: Set[str] = field(default_factory=set)
    #: Records successfully parsed.
    records: int = 0
    #: True when the file ended in a torn (unparseable) line.
    truncated: bool = False
    interrupted: bool = False
    closed: bool = False


class RunJournal:
    """Append-only JSONL journal for one grid.

    Each :meth:`record` opens, appends, flushes, fsyncs, and closes — no
    dangling handle survives a crash, and every acknowledged record is
    durable. Grids are coarse (seconds per cell), so the per-record fsync
    is noise next to a simulation.
    """

    def __init__(self, path: Union[str, Path], grid: Optional[str] = None) -> None:
        self.path = Path(path)
        self.grid = grid
        self.records_written = 0

    @classmethod
    def for_grid(
        cls,
        journal_dir: Union[str, Path],
        specs: Sequence[TaskSpec],
        policy: RetryPolicy,
    ) -> "RunJournal":
        """The canonical journal for this grid under ``journal_dir``."""
        grid = grid_fingerprint(specs, policy)
        return cls(Path(journal_dir) / f"{grid}.jsonl", grid)

    # -------------------------------------------------------------- writing
    def rotate_stale(self) -> None:
        """Move an existing journal aside (a fresh, non-resume run starts).

        The old file is kept as ``*.jsonl.bak`` rather than deleted, so an
        accidental fresh start doesn't destroy a resumable run.
        """
        if self.path.exists():
            os.replace(self.path, self.path.with_suffix(".jsonl.bak"))

    def record(self, record_kind: str, **fields: Any) -> None:
        """Durably append one record (writing the ``open`` header first).

        The record kind lands in the ``t`` field; ``fields`` may freely use
        any other name (including ``kind``, which failure records use for
        the error class).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        if not self.path.exists():
            lines.append(
                {
                    "t": "open",
                    "schema": JOURNAL_SCHEMA,
                    "grid": self.grid,
                    "version": __version__,
                    "kernel": KERNEL_BEHAVIOR_VERSION,
                }
            )
        lines.append({"t": record_kind, **fields})
        # A previous run may have died mid-append (ENOSPC, SIGKILL),
        # leaving a torn final line with no newline. Terminate it before
        # appending, or the new record would merge into the garbage and be
        # lost with it — replay() skips exactly one bad line either way,
        # but it must be the *torn* one, not ours.
        terminate_torn_tail = self._tail_is_unterminated()
        # The write/fsync pair goes through the havoc fs seam: an injected
        # (or real) ENOSPC mid-append leaves at most a torn final line,
        # which replay() skips — the crash-safety contract under test.
        with open(self.path, "a") as handle:
            if terminate_torn_tail:
                havocfs.write(handle, "\n", self.path)
            for line in lines:
                havocfs.write(
                    handle,
                    json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n",
                    self.path,
                )
            handle.flush()
            havocfs.fsync(handle.fileno(), str(self.path))
        self.records_written += len(lines)

    def _tail_is_unterminated(self) -> bool:
        """True when the file ends mid-line (a torn append to repair)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):  # absent or empty: nothing torn
            return False

    # -------------------------------------------------------------- reading
    def replay(self) -> JournalState:
        """Fold the record stream into a :class:`JournalState`.

        Tolerant by construction: a missing file is an empty state; a torn
        or garbled line (crash mid-append, disk corruption) is skipped and
        flagged, never fatal — the worst case is re-running a cell whose
        ``done`` record was lost, which is correct, just slower.
        """
        state = JournalState(grid=self.grid)
        try:
            text = self.path.read_text()
        except OSError:
            return state
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                state.truncated = True
                continue
            if not isinstance(record, dict):
                state.truncated = True
                continue
            state.records += 1
            kind = record.get("t")
            cell = record.get("cell")
            if kind == "open":
                if (
                    self.grid is not None
                    and record.get("grid") not in (None, self.grid)
                ):
                    raise ValueError(
                        f"journal {self.path} belongs to grid "
                        f"{record.get('grid')!r}, not {self.grid!r}"
                    )
                state.grid = record.get("grid", state.grid)
            elif kind == "dispatch":
                state.in_flight.add(cell)
            elif kind == "done":
                state.completed[cell] = record
                state.in_flight.discard(cell)
            elif kind == "quarantine":
                state.quarantined[cell] = record
                state.in_flight.discard(cell)
            elif kind == "failed":
                state.failed[cell] = record
                state.in_flight.discard(cell)
            elif kind == "interrupt":
                state.interrupted = True
            elif kind == "close":
                state.closed = True
            # "attempt"/"requeue" and unknown kinds are informational only.
        return state
