"""Spec execution: the code that actually runs inside worker processes.

:func:`run_task` is the spawn-safe, top-level worker function handed to the
process pool — it takes a plain dict (a serialised :class:`TaskSpec` plus
the attempt number), dispatches on the spec's ``kind``, and returns a plain
dict. The serial (``jobs=1``) path calls the very same function in-process,
so parallel and serial execution are the same code and produce identical
results.

Fault injection: a spec's ``fault`` mapping can request a crash
(``os._exit`` in a worker — indistinguishable from a segfault), a raised
exception, or a hang on the first N attempts. This is the test hook for the
engine's retry/timeout machinery; faults are excluded from the cache
fingerprint so they never pollute real results.

Heartbeats: when the payload carries a ``heartbeat`` path, a daemon thread
atomically rewrites that sentinel file every ``heartbeat_s`` seconds with
the worker's pid, a beat counter, and the live simulator's progress
(events dispatched, sim time) sampled via
:func:`repro.sim.simulator.active_simulator`. The engine's watchdog reads
it to tell a *dead/frozen worker* (beats stop) from a *hung simulation*
(beats continue, progress flat) — and to kill either well before the
coarse per-cell timeout.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.runner.taskspec import TaskSpec


class InjectedFault(RuntimeError):
    """Raised by the fault-injection hook (and by in-process "crashes")."""


class _HeartbeatWriter(threading.Thread):
    """Daemon thread: rewrite the heartbeat sentinel every interval.

    Writes are tmp-file + ``os.replace`` so the engine never reads a torn
    sentinel, and best-effort — a full disk must not fail the simulation.
    The first beat is written immediately, so the engine sees the file as
    soon as the (spawned, freshly importing) worker reaches the task.
    """

    def __init__(self, path: str, interval_s: float) -> None:
        super().__init__(name="repro-heartbeat", daemon=True)
        self.path = path
        self.interval_s = max(interval_s, 0.05)
        self.beats = 0
        self._stopped = threading.Event()

    def _beat(self) -> None:
        from repro.sim.simulator import active_simulator

        sim = active_simulator()
        self.beats += 1
        payload = {
            "pid": os.getpid(),
            "beats": self.beats,
            "events": sim.events_executed if sim is not None else None,
            "sim_t": round(sim.now_seconds, 3) if sim is not None else None,
        }
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            pass

    def run(self) -> None:  # pragma: no cover - timing-dependent loop body
        while True:
            self._beat()
            if self._stopped.wait(self.interval_s):
                return

    def stop(self) -> None:
        self._stopped.set()


def _apply_fault(
    fault: Optional[Mapping[str, Any]], attempt: int, in_process: bool
) -> None:
    if not fault:
        return
    if attempt < int(fault.get("crash_attempts", 0)):
        if in_process:
            # A hard exit would kill the caller's interpreter; an exception
            # exercises the same serial retry path.
            raise InjectedFault(f"injected crash (attempt {attempt})")
        os._exit(17)
    if attempt < int(fault.get("error_attempts", 0)):
        raise InjectedFault(f"injected error (attempt {attempt})")
    if attempt < int(fault.get("hang_attempts", 0)):
        time.sleep(float(fault.get("hang_s", 3600.0)))


# ------------------------------------------------------------------ executors

def _execute_comparison(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.comparison import run_comparison
    from repro.metrics.io import comparison_to_dict

    result = run_comparison(
        params["variant"],
        zigbee_channel=params["zigbee_channel"],
        seed=params["seed"],
        **params["schedule"],
    )
    return comparison_to_dict(result)


def _execute_chaos(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.chaos import run_chaos

    return run_chaos(
        params["variant"],
        scenario=params["scenario"],
        intensity=params["intensity"],
        seed=params["seed"],
        zigbee_channel=params["zigbee_channel"],
        **params["schedule"],
    )


def _execute_lora(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.lora import run_lora

    return run_lora(
        params["variant"],
        seed=params["seed"],
        radio_profile=params["radio_profile"],
        **params["schedule"],
    )


def _execute_wake_interval(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.sweep import wake_interval_point

    point = wake_interval_point(
        params["wake_ms"],
        protocol=params["protocol"],
        seed=params["seed"],
        n_controls=params["n_controls"],
        converge_seconds=params["converge_seconds"],
    )
    return point.to_dict()


def _execute_network_size(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.sweep import network_size_point

    point = network_size_point(
        params["size"],
        field_density=params["field_density"],
        seed=params["seed"],
        n_controls=params["n_controls"],
    )
    return point.to_dict()


def _execute_scale(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.scale import scale_point

    spatial = params["spatial_index"]
    return scale_point(
        params["topo"],
        size=params["size"],
        seed=params["seed"],
        spatial_index=dict(spatial) if spatial is not None else None,
        **params["schedule"],
    )


def _execute_soak(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.soak import run_soak

    return run_soak(
        params["variant"],
        seed=params["seed"],
        zigbee_channel=params["zigbee_channel"],
        **params["schedule"],
    )


def _execute_selftest(params: Mapping[str, Any]) -> Dict[str, Any]:
    if params["sleep_s"]:
        time.sleep(params["sleep_s"])
    index = params["index"]
    # Deterministic arithmetic so result equality is checkable across paths.
    value = (index * 2654435761 + params["payload"]) % 2**31
    return {"index": index, "value": value}


_EXECUTORS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {
    "comparison": _execute_comparison,
    "chaos": _execute_chaos,
    "lora": _execute_lora,
    "wake-interval": _execute_wake_interval,
    "network-size": _execute_network_size,
    "scale": _execute_scale,
    "soak": _execute_soak,
    "selftest": _execute_selftest,
}


def sim_seconds_estimate(spec: TaskSpec) -> float:
    """Scheduled simulated seconds for one cell (telemetry's sim/wall ratio)."""
    p = spec.params
    if spec.kind in ("comparison", "chaos", "lora"):
        s = p["schedule"]
        return (
            s["converge_seconds"]
            + s["n_controls"] * s["control_interval_s"]
            + s["drain_seconds"]
        )
    if spec.kind == "wake-interval":
        return p["converge_seconds"] + p["n_controls"] * 45.0 + 60.0
    if spec.kind == "network-size":
        return 300.0 + p["n_controls"] * 20.0 + 60.0
    if spec.kind == "scale":
        s = p["schedule"]
        return (
            s["converge_seconds"]
            + s["n_controls"] * s["control_interval_s"]
            + s["drain_seconds"]
        )
    if spec.kind == "soak":
        s = p["schedule"]
        return s["converge_seconds"] + s["duration_s"]
    return 0.0


def execute_spec(spec: TaskSpec) -> Dict[str, Any]:
    """Run one cell and return its JSON-serialisable result payload."""
    try:
        executor = _EXECUTORS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown task kind {spec.kind!r}; choose from {sorted(_EXECUTORS)}"
        ) from None
    return executor(spec.params)


def run_task(payload: Mapping[str, Any], in_process: bool = False) -> Dict[str, Any]:
    """Top-level worker entry point (must stay importable for spawn).

    ``payload`` is ``{"spec": TaskSpec.to_dict(), "attempt": int}``, plus
    optional ``heartbeat``/``heartbeat_s`` keys naming a sentinel file for
    the engine's watchdog (parallel mode only — in-process callers are
    blocked on the cell anyway). The return value is ``{"result",
    "wall_s", "sim_s", "events"}`` (``events`` is the kernel's
    dispatched-event count when the executor reports one, else None — it
    feeds the events/sec column in runner telemetry).
    """
    spec = TaskSpec.from_dict(payload["spec"])
    heartbeat = None
    heartbeat_path = payload.get("heartbeat")
    if heartbeat_path and not in_process:
        heartbeat = _HeartbeatWriter(
            heartbeat_path, float(payload.get("heartbeat_s", 1.0))
        )
        heartbeat.start()
    try:
        _apply_fault(spec.fault, int(payload.get("attempt", 0)), in_process)
        started = time.perf_counter()
        result = execute_spec(spec)
        return {
            "result": result,
            "wall_s": time.perf_counter() - started,
            "sim_s": sim_seconds_estimate(spec),
            "events": result.get("events_executed"),
        }
    finally:
        if heartbeat is not None:
            heartbeat.stop()
