"""On-disk, content-addressed result cache.

One JSON file per cell, named by the spec fingerprint. Because the
fingerprint already folds in the package version *and* the kernel
behaviour version (:data:`repro.sim.KERNEL_BEHAVIOR_VERSION`), bumping
either simply makes old entries unreachable; :meth:`ResultCache.load`
additionally verifies the stored version/kernel/fingerprint fields so a
stale or tampered file degrades to a cache miss, never to a wrong result.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.runner.taskspec import SPEC_SCHEMA, TaskSpec
from repro.sim.simulator import KERNEL_BEHAVIOR_VERSION
from repro.version import __version__


class ResultCache:
    """Load/store successful cell results keyed by spec fingerprint."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, spec: TaskSpec) -> Path:
        """Cache file for one spec."""
        return self.root / f"{spec.fingerprint}.json"

    def load(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        """The cached result payload, or None on any kind of miss."""
        path = self.path_for(spec)
        try:
            stored = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            stored.get("schema") != SPEC_SCHEMA
            or stored.get("version") != __version__
            or stored.get("kernel") != KERNEL_BEHAVIOR_VERSION
            or stored.get("fingerprint") != spec.fingerprint
        ):
            self.misses += 1
            return None
        self.hits += 1
        return stored.get("result")

    def store(self, spec: TaskSpec, result: Dict[str, Any]) -> Path:
        """Persist one successful result; returns the file written."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": SPEC_SCHEMA,
            "version": __version__,
            "kernel": KERNEL_BEHAVIOR_VERSION,
            "fingerprint": spec.fingerprint,
            "kind": spec.kind,
            "label": spec.label,
            "params": spec.params,
            "result": result,
        }
        # Unique temp name + atomic rename: concurrent runners (or parallel
        # workers finishing the same cell) never clobber each other's
        # half-written file, and readers only ever see complete entries.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{spec.fingerprint}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path
