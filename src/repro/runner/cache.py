"""On-disk, content-addressed result cache.

One JSON file per cell, named by the spec fingerprint. Because the
fingerprint already folds in the package version *and* the kernel
behaviour version (:data:`repro.sim.KERNEL_BEHAVIOR_VERSION`), bumping
either simply makes old entries unreachable.

The cache is **self-healing**: a truncated, bit-rotted, or
schema-mismatched entry is quarantined (renamed to ``*.corrupt``), logged
through the progress sink, and reported as a miss — so a damaged cache
file costs one re-simulation, never a crashed grid and never a wrong
result. :meth:`ResultCache.load` additionally verifies the stored
version/kernel/fingerprint fields, so a tampered-but-parseable file
degrades the same way.

The cache is also **concurrent-writer safe** — a requirement once farm
workers on several processes (or hosts) share one cache directory:

- writes are unique-temp-file + atomic ``os.replace``, so readers never
  see a torn entry and two writers finishing the same cell simply race
  to install bit-identical content;
- the *quarantine* path takes an advisory ``flock`` on ``.lock`` in the
  cache root and **re-verifies** the entry under the lock before renaming
  it aside: if a concurrent writer replaced the damaged bytes with a fresh
  valid entry in the meantime, the quarantine is abandoned and the read
  degrades to a plain miss. A valid entry can therefore never be destroyed
  by a reader that observed its predecessor mid-heal.
- writers take the same lock around the final rename, so the
  re-verify/rename pair above cannot interleave with an install.

On platforms without ``fcntl`` the lock degrades to the pure
rename-discipline protocol (atomic installs + re-verification), which
closes the same race up to a much smaller window.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.havoc import fs as havocfs
from repro.runner.taskspec import SPEC_SCHEMA, TaskSpec
from repro.sim.simulator import KERNEL_BEHAVIOR_VERSION
from repro.version import __version__

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]


class ResultCache:
    """Load/store successful cell results keyed by spec fingerprint.

    ``locking=True`` (the default) serialises installs and quarantines
    through an advisory ``flock`` when the platform supports it; pass
    ``locking=False`` to rely on the lock-free rename discipline alone
    (e.g. on network filesystems with broken ``flock`` semantics).
    """

    def __init__(
        self,
        root: Union[str, Path],
        progress: Optional[Callable[..., None]] = None,
        locking: bool = True,
    ) -> None:
        self.root = Path(root)
        self.progress = progress
        self.locking = locking and fcntl is not None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt entries renamed aside (each one re-executed its cell).
        self.quarantined = 0

    def _emit(self, message: str, **data: Any) -> None:
        if self.progress is not None:
            self.progress("cache", message, **data)

    def path_for(self, spec: TaskSpec) -> Path:
        """Cache file for one spec."""
        return self.root / f"{spec.fingerprint}.json"

    @contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory exclusive lock on the cache root (no-op when disabled).

        Held only around metadata-rate operations (the final install
        rename, the quarantine re-verify/rename) — never around a
        simulation or a bulk write, so contention stays negligible.
        """
        if not self.locking:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".lock", "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _quarantine(self, path: Path, reason: str, observed: bytes) -> None:
        """Rename a damaged entry to ``*.corrupt`` so it can't re-offend.

        ``observed`` is the damaged content that justified the verdict.
        Under the advisory lock the entry is re-read and compared: if a
        concurrent writer has already replaced (or removed) it, the
        quarantine is abandoned — the caller proceeds as on a plain miss
        and the fresh entry survives untouched.
        """
        quarantine_path = path.with_name(path.name + ".corrupt")
        with self._lock():
            try:
                current = path.read_bytes()
            except OSError:  # gone: concurrently quarantined or removed
                return
            if current != observed:
                return  # a concurrent writer healed the slot; keep it
            try:
                os.replace(path, quarantine_path)
            except OSError:
                return
        self.quarantined += 1
        self._emit(
            f"quarantined corrupt cache entry {path.name}: {reason}",
            entry=path.name,
            reason=reason,
        )

    def load(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        """The cached result payload, or None on any kind of miss.

        Never raises for a damaged file: corruption quarantines the entry
        and degrades to a miss, so the cell transparently re-executes.
        """
        path = self.path_for(spec)
        try:
            raw = havocfs.read_bytes(path)
        except OSError:  # absent (the common miss) or unreadable (EIO)
            self.misses += 1
            return None
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:  # bit-rot produced invalid UTF-8
            self.misses += 1
            self._quarantine(path, "invalid UTF-8 (bit-rotted)", raw)
            return None
        try:
            stored = json.loads(text)
        except ValueError:
            self.misses += 1
            self._quarantine(path, "invalid JSON (truncated or bit-rotted)", raw)
            return None
        if not isinstance(stored, dict) or not isinstance(
            stored.get("result"), dict
        ):
            self.misses += 1
            self._quarantine(path, "malformed entry (no result payload)", raw)
            return None
        if stored.get("schema") != SPEC_SCHEMA:
            self.misses += 1
            self._quarantine(
                path, f"schema {stored.get('schema')!r} != {SPEC_SCHEMA}", raw
            )
            return None
        if (
            stored.get("version") != __version__
            or stored.get("kernel") != KERNEL_BEHAVIOR_VERSION
            or stored.get("fingerprint") != spec.fingerprint
        ):
            # The fingerprint in the *name* folds in version and kernel, so
            # a correctly-named file disagreeing about them is inconsistent
            # with itself — quarantine rather than silently shadow the slot.
            self.misses += 1
            self._quarantine(path, "version/kernel/fingerprint mismatch", raw)
            return None
        self.hits += 1
        return stored["result"]

    def store(self, spec: TaskSpec, result: Dict[str, Any]) -> Path:
        """Persist one successful result; returns the file written."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": SPEC_SCHEMA,
            "version": __version__,
            "kernel": KERNEL_BEHAVIOR_VERSION,
            "fingerprint": spec.fingerprint,
            "kind": spec.kind,
            "label": spec.label,
            "params": spec.params,
            "result": result,
        }
        # Unique temp name + atomic rename: concurrent runners (or parallel
        # workers finishing the same cell) never clobber each other's
        # half-written file, and readers only ever see complete entries.
        # The install rename happens under the advisory lock so it cannot
        # interleave with a quarantine's re-verify/rename pair.
        text = json.dumps(payload, indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{spec.fingerprint}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                havocfs.write(handle, text, path)
            # Fail closed on a lying disk: verify the temp file before the
            # install rename, so ENOSPC-shortened bytes raise here instead
            # of becoming a (self-healing, but avoidable) corrupt entry.
            if havocfs.read_bytes(tmp_name) != text.encode("utf-8"):
                raise OSError(
                    errno.EIO,
                    f"torn write detected installing cache entry {path.name}",
                    str(path),
                )
            with self._lock():
                havocfs.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path
