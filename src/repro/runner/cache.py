"""On-disk, content-addressed result cache.

One JSON file per cell, named by the spec fingerprint. Because the
fingerprint already folds in the package version *and* the kernel
behaviour version (:data:`repro.sim.KERNEL_BEHAVIOR_VERSION`), bumping
either simply makes old entries unreachable.

The cache is **self-healing**: a truncated, bit-rotted, or
schema-mismatched entry is quarantined (renamed to ``*.corrupt``), logged
through the progress sink, and reported as a miss — so a damaged cache
file costs one re-simulation, never a crashed grid and never a wrong
result. :meth:`ResultCache.load` additionally verifies the stored
version/kernel/fingerprint fields, so a tampered-but-parseable file
degrades the same way.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.runner.taskspec import SPEC_SCHEMA, TaskSpec
from repro.sim.simulator import KERNEL_BEHAVIOR_VERSION
from repro.version import __version__


class ResultCache:
    """Load/store successful cell results keyed by spec fingerprint."""

    def __init__(
        self,
        root: Union[str, Path],
        progress: Optional[Callable[..., None]] = None,
    ) -> None:
        self.root = Path(root)
        self.progress = progress
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt entries renamed aside (each one re-executed its cell).
        self.quarantined = 0

    def _emit(self, message: str, **data: Any) -> None:
        if self.progress is not None:
            self.progress("cache", message, **data)

    def path_for(self, spec: TaskSpec) -> Path:
        """Cache file for one spec."""
        return self.root / f"{spec.fingerprint}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Rename a damaged entry to ``*.corrupt`` so it can't re-offend.

        The rename is best-effort: a concurrent runner may have quarantined
        (or legitimately rewritten) the file already, and either way the
        caller proceeds as on a plain miss.
        """
        quarantine_path = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine_path)
        except OSError:
            pass
        self.quarantined += 1
        self._emit(
            f"quarantined corrupt cache entry {path.name}: {reason}",
            entry=path.name,
            reason=reason,
        )

    def load(self, spec: TaskSpec) -> Optional[Dict[str, Any]]:
        """The cached result payload, or None on any kind of miss.

        Never raises for a damaged file: corruption quarantines the entry
        and degrades to a miss, so the cell transparently re-executes.
        """
        path = self.path_for(spec)
        try:
            text = path.read_text()
        except OSError:  # absent (the common miss) or unreadable
            self.misses += 1
            return None
        except UnicodeDecodeError:  # bit-rot produced invalid UTF-8
            self.misses += 1
            self._quarantine(path, "invalid UTF-8 (bit-rotted)")
            return None
        try:
            stored = json.loads(text)
        except ValueError:
            self.misses += 1
            self._quarantine(path, "invalid JSON (truncated or bit-rotted)")
            return None
        if not isinstance(stored, dict) or not isinstance(
            stored.get("result"), dict
        ):
            self.misses += 1
            self._quarantine(path, "malformed entry (no result payload)")
            return None
        if stored.get("schema") != SPEC_SCHEMA:
            self.misses += 1
            self._quarantine(
                path, f"schema {stored.get('schema')!r} != {SPEC_SCHEMA}"
            )
            return None
        if (
            stored.get("version") != __version__
            or stored.get("kernel") != KERNEL_BEHAVIOR_VERSION
            or stored.get("fingerprint") != spec.fingerprint
        ):
            # The fingerprint in the *name* folds in version and kernel, so
            # a correctly-named file disagreeing about them is inconsistent
            # with itself — quarantine rather than silently shadow the slot.
            self.misses += 1
            self._quarantine(path, "version/kernel/fingerprint mismatch")
            return None
        self.hits += 1
        return stored["result"]

    def store(self, spec: TaskSpec, result: Dict[str, Any]) -> Path:
        """Persist one successful result; returns the file written."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": SPEC_SCHEMA,
            "version": __version__,
            "kernel": KERNEL_BEHAVIOR_VERSION,
            "fingerprint": spec.fingerprint,
            "kind": spec.kind,
            "label": spec.label,
            "params": spec.params,
            "result": result,
        }
        # Unique temp name + atomic rename: concurrent runners (or parallel
        # workers finishing the same cell) never clobber each other's
        # half-written file, and readers only ever see complete entries.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{spec.fingerprint}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path
