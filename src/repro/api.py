"""High-level public API: build a network, run it, send remote-control packets.

This facade wires the full stack (radio, MAC, CTP, TeleAdjusting or a
baseline) for a chosen topology::

    import repro

    net = repro.build_network(topology="indoor-testbed", seed=1)
    net.converge()
    record = net.send_control(destination=7, payload={"ipi_s": 600})
    net.run(30)
    print(record.delivered, record.latency_s)

The lower-level packages (``repro.sim``, ``repro.radio``, ``repro.mac``,
``repro.net``, ``repro.core``, ``repro.baselines``) stay importable for users
who need to customise a layer.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.harness import Network, NetworkConfig
from repro.metrics.control import ControlRecord

#: Re-exported so ``repro.RemoteControlResult`` keeps a stable name.
RemoteControlResult = ControlRecord

#: Builder alias: ``NetworkBuilder().build()`` style is served by NetworkConfig.
NetworkBuilder = NetworkConfig


def build_network(
    topology: str = "indoor-testbed",
    protocol: str = "tele",
    seed: int = 0,
    zigbee_channel: int = 26,
    re_tele: bool = False,
    config: Optional[NetworkConfig] = None,
    **overrides: object,
) -> Network:
    """Build a fully wired simulated WSN.

    ``topology``: ``"indoor-testbed"`` (40 nodes, ≤6 hops), ``"tight-grid"``
    (225 nodes), ``"sparse-linear"`` (225 nodes), or a
    :class:`repro.topology.Deployment`.
    ``protocol``: any name in :func:`repro.protocols.protocol_names` —
    ``"tele"`` (TeleAdjusting), ``"drip"``, ``"rpl"``, ``"orpl"``,
    ``"none"`` (bare CTP), or anything added via
    :func:`repro.protocols.register_protocol`.
    Any other :class:`NetworkConfig` field may be passed as a keyword.
    """
    if config is None:
        config = NetworkConfig(
            topology=topology,
            protocol=protocol,
            seed=seed,
            zigbee_channel=zigbee_channel,
            re_tele=re_tele,
        )
    return Network(config, **overrides)


def run_experiment(
    variant: str,
    zigbee_channel: int = 26,
    seed: int = 0,
    n_controls: int = 30,
    **kwargs: object,
) -> ComparisonResult:
    """Run one cell of the paper's evaluation matrix; see
    :func:`repro.experiments.comparison.run_comparison`."""
    return run_comparison(
        variant, zigbee_channel=zigbee_channel, seed=seed, n_controls=n_controls, **kwargs
    )
