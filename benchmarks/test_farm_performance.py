"""Farm throughput canary: executor dispatch overhead in cells/sec.

The queue executor buys distribution with filesystem round-trips (task
files, leases, markers); this canary pins how much that costs relative to
the in-process and local-pool paths, on zero-work selftest cells — pure
executor machinery, no simulation.

Raw cells/sec is machine-dependent, so enforcement (``REPRO_PERF_ENFORCE=1``)
uses the *normalised* ratio: an executor's cells/sec divided by the
in-process cells/sec measured in the same run. Only ``queue-self-drain``
is gated — the subprocess paths (local-pool, queue-workers) are dominated
by constant spawn cost at smoke scale and swing ±40% run to run, so they
are recorded as trajectory only. The gate is deliberately loose (a 2×
normalised slowdown vs the committed baseline fails): its job is catching
order-of-magnitude regressions — an accidental sleep in the poll loop,
quadratic marker scans — not 10% drift. ``BENCH_farm.json`` records
everything either way.
"""

import json
import os
import time
from pathlib import Path

from repro.farm import QueueExecutor
from repro.runner import ParallelRunner, selftest_spec

#: Cells per scale. "smoke" is the CI tier; "full" pins the committed
#: baseline. Zero sleep: the canary measures dispatch, not simulation.
SCALE_CELLS = {"full": 96, "smoke": 48}

#: Executors whose normalised ratio is enforced (see module docstring).
GATED = ("queue-self-drain",)

BASELINE_PATH = "benchmarks/baselines/farm_baseline.json"


def _cells_per_second(make_runner, specs):
    runner = make_runner()
    started = time.perf_counter()
    outcomes = runner.run(specs)
    wall = time.perf_counter() - started
    assert all(o.status == "executed" for o in outcomes)
    return {
        "cells": len(specs),
        "wall_s": round(wall, 4),
        "cells_per_s": round(len(specs) / wall, 1) if wall > 0 else None,
    }


def test_farm_throughput_canary(tmp_path):
    """cells/sec per executor; emits BENCH_farm.json; gated when enforced."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    n_cells = SCALE_CELLS[scale]
    specs = [selftest_spec(i) for i in range(n_cells)]

    executors = {
        "in-process": lambda: ParallelRunner(jobs=1),
        "local-pool": lambda: ParallelRunner(jobs=2),
        "queue-self-drain": lambda: ParallelRunner(
            executor=QueueExecutor(tmp_path / "q-self", workers=0)
        ),
        "queue-workers": lambda: ParallelRunner(
            executor=QueueExecutor(
                tmp_path / "q-workers", workers=2, self_drain=False,
                lease_ttl=30.0,
            )
        ),
    }

    measured = {}
    for name, make_runner in executors.items():
        measured[name] = _cells_per_second(make_runner, specs)
        print(f"{name:18s} {measured[name]}")

    norm = measured["in-process"]["cells_per_s"]
    for stats in measured.values():
        stats["normalized"] = (
            round(stats["cells_per_s"] / norm, 4) if norm else None
        )

    baseline_file = Path(__file__).resolve().parent.parent / BASELINE_PATH
    baseline = (
        json.loads(baseline_file.read_text()) if baseline_file.exists() else {}
    )
    base_scale = baseline.get("scales", {}).get(scale, {})

    payload = {
        "scale": scale,
        "executors": measured,
        "baseline": base_scale,
        "baseline_label": baseline.get("label"),
    }
    Path("BENCH_farm.json").write_text(json.dumps(payload, indent=2, sort_keys=True))
    ratios = {k: v["normalized"] for k, v in measured.items()}
    print(f"\nfarm throughput ({scale}), normalized vs in-process: {ratios}")

    if os.environ.get("REPRO_PERF_ENFORCE"):
        for name in GATED:
            stats = measured[name]
            base_norm = base_scale.get(name, {}).get("normalized")
            if not base_norm or not stats["normalized"]:
                continue
            floor = 0.5 * base_norm
            assert stats["normalized"] >= floor, (
                f"farm perf regression in {name!r}: normalized cells/sec "
                f"{stats['normalized']} fell below 50% of the committed "
                f"baseline {base_norm} (floor {floor:.4f}). If the executor "
                f"legitimately gained per-cell work (new durability "
                f"round-trips), re-record {BASELINE_PATH} and justify it in "
                f"the PR; otherwise find the hot-path regression."
            )
