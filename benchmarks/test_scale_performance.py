"""City-scale throughput canary: the spatial index must keep paying off.

One converge+control scale cell (:func:`repro.experiments.scale.scale_point`)
is timed and normalised against the bare event loop measured in the same
process — the ratio cancels machine speed and isolates per-event stack cost,
exactly like the kernel canary. The JSON artefact (``BENCH_scale.json``)
carries raw events/sec so dashboards can watch the headline number: a
10 000-node cell completing in minutes on one machine.

Scales: ``REPRO_BENCH_SCALE=smoke`` (CI's scale-smoke job: ~2k nodes, a
shortened schedule) or ``full`` (default: the pinned 2k golden cell).
Enforcement is opt-in via ``REPRO_PERF_ENFORCE=1`` and deliberately loose
(50% of the committed normalised baseline): scale cells run minutes, so
the floor only catches "the index stopped working" regressions, not noise.
"""

import json
import os
import time
from pathlib import Path

from repro.sim import Simulator

#: Per-tier scale cells. Smoke stays under ~a minute of CI wall clock;
#: full is the corpus 2k cell (same arguments as tests/golden's forest-2k).
SCALE_CELLS = {
    "smoke": dict(
        topo="forest", size=2000, seed=1,
        n_controls=3, control_interval_s=10.0,
        converge_seconds=120.0, drain_seconds=20.0,
    ),
    "full": dict(
        topo="forest", size=2000, seed=1,
        n_controls=5, control_interval_s=10.0,
        converge_seconds=240.0, drain_seconds=30.0,
    ),
}

BASELINE_PATH = "benchmarks/baselines/scale_baseline.json"


def _event_loop_rate(n_events=100_000):
    """Bare-kernel chained dispatch: the machine-speed normaliser."""
    sim = Simulator(seed=1)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return count[0] / wall if wall > 0 else 0.0


def test_scale_throughput_canary():
    """Events/sec for one city-scale cell; emits BENCH_scale.json."""
    from repro.experiments.scale import scale_point

    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    cell = SCALE_CELLS[scale]

    norm_rate = _event_loop_rate()
    result = scale_point(**cell)
    assert result["converged"], "scale cell failed to converge — not a perf issue"
    assert result["pdr"] is not None and result["pdr"] > 0.5

    normalized = round(result["events_per_sec"] / norm_rate, 4) if norm_rate else None
    measured = {
        "nodes": result["size"],
        "events": result["events_executed"],
        "wall_s": result["wall_s"],
        "events_per_s": result["events_per_sec"],
        "normalized": normalized,
        "event_loop_events_per_s": round(norm_rate, 1),
    }

    baseline_file = Path(__file__).resolve().parent.parent / BASELINE_PATH
    baseline = json.loads(baseline_file.read_text()) if baseline_file.exists() else {}
    base_scale = baseline.get("scales", {}).get(scale, {})

    payload = {
        "scale": scale,
        "cell": cell,
        "measured": measured,
        "baseline": base_scale,
        "baseline_label": baseline.get("label"),
    }
    Path("BENCH_scale.json").write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nscale throughput ({scale}): {json.dumps(measured)}")

    if os.environ.get("REPRO_PERF_ENFORCE"):
        base_norm = base_scale.get("normalized")
        if base_norm and normalized:
            floor = 0.5 * base_norm
            assert normalized >= floor, (
                f"scale perf regression: normalized events/sec {normalized} "
                f"fell below 50% of the committed baseline {base_norm} "
                f"(floor {floor:.4f}). The spatial index (or the stack above "
                f"it) got much slower per event at city scale. If a PR "
                f"legitimately adds per-event physics, re-record "
                f"{BASELINE_PATH} and justify it; otherwise find the "
                f"regression."
            )
