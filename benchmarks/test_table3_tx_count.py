"""Table III: average network-wide transmission count per control packet.

Paper's measurements (ch26 / ch19): TeleAdjusting 4.43 / 4.59,
Drip 109.35 / 116.35, RPL 5.17 / 5.52.

Shape to hold: Drip is 20–30× the structured protocols; TeleAdjusting and
RPL sit in the single digits.
"""

from .conftest import print_rows

PAPER = {"tele": (4.43, 4.59), "drip": (109.35, 116.35), "rpl": (5.17, 5.52)}


def test_table3_transmission_counts(benchmark, get_comparison):
    def run():
        return {
            (variant, channel): get_comparison(variant, channel)
            for variant in ("tele", "drip", "rpl")
            for channel in (26, 19)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (variant, channel), result in results.items():
        paper = PAPER[variant][0 if channel == 26 else 1]
        rows.append(
            (
                variant,
                f"ch{channel}",
                f"tx/control={result.tx_per_control:.2f}",
                f"paper={paper}",
            )
        )
    print_rows("Table III: network-wide transmissions per control packet", rows)
    for channel in (26, 19):
        tele = results[("tele", channel)].tx_per_control
        drip = results[("drip", channel)].tx_per_control
        rpl = results[("rpl", channel)].tx_per_control
        # Flooding pays an order of magnitude more than structured delivery.
        assert drip > 10 * tele, (channel, drip, tele)
        assert drip > 10 * rpl, (channel, drip, rpl)
        # Structured protocols stay in the single digits, as in the paper.
        assert tele < 15, (channel, tele)
        assert rpl < 15, (channel, rpl)
