"""Figure 8: accumulated transmission hop count (ATHX) vs CTP hop count.

Paper's claims: TeleAdjusting's ATHX is often *below* the CTP hop count
(opportunistic shortcuts); RPL's ATHX tracks the CTP hop count almost
exactly (strict routing-table forwarding); Drip floods, so ATHX is not a
per-path quantity (its redundancy shows up in Table III instead).
"""

from repro.metrics.stats import mean

from .conftest import print_rows


def test_fig8_athx_vs_ctp_hops(benchmark, get_comparison):
    def run():
        return {v: get_comparison(v, 26) for v in ("tele", "rpl")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    ratios = {}
    for variant, result in results.items():
        samples = [(h, a) for h, a in result.athx_samples if h > 0]
        ratio = mean([a / h for h, a in samples]) if samples else None
        ratios[variant] = ratio
        rows.append(
            (
                variant,
                f"n={len(samples)}",
                f"avg ATHX/CTP-hops={ratio:.2f}" if ratio else "n/a",
                "samples:" + ",".join(f"({h},{a})" for h, a in samples[:12]),
            )
        )
    print_rows("Fig 8: ATHX vs CTP hop count (channel 26)", rows)
    assert ratios["tele"] is not None and ratios["rpl"] is not None
    # RPL follows the tree almost exactly.
    assert 0.9 <= ratios["rpl"] <= 1.2, ratios["rpl"]
    # TeleAdjusting's opportunism keeps ATHX at or below tree depth on
    # average (shortcuts vs occasional detours roughly cancel; the paper's
    # Figure 8(a) shows ATHX ≲ hop count).
    assert ratios["tele"] <= ratios["rpl"] + 0.25, ratios
    # And some individual deliveries genuinely beat the tree depth.
    tele_samples = [(h, a) for h, a in results["tele"].athx_samples if h > 1]
    if tele_samples:
        assert any(a < h for h, a in tele_samples) or ratios["tele"] <= 1.0
