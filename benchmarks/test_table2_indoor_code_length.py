"""Table II: path-code length per hop on the 40-node indoor testbed.

Paper's measurements: average code length 4.23 bits at 1 hop growing to
15.8 bits at 6 hops; maximum 20 bits over the whole network.
"""

from repro.experiments.codestats import code_length_by_hop
from repro.metrics.stats import mean

from .conftest import print_rows

PAPER_AVG = {1: 4.23, 2: 7.06, 3: 9.41, 4: 11.28, 5: 13.83, 6: 15.8}


def test_table2_indoor_code_lengths(benchmark, get_construction):
    net = benchmark.pedantic(
        lambda: get_construction("indoor-testbed"), rounds=1, iterations=1
    )
    by_hop = code_length_by_hop(net)
    rows = [
        (
            f"{hop} hops",
            f"avg={mean(lengths):.2f}",
            f"min={min(lengths)}",
            f"max={max(lengths)}",
            f"paper avg={PAPER_AVG.get(hop, '—')}",
        )
        for hop, lengths in by_hop.items()
        if 1 <= hop <= 8
    ]
    print_rows("Table II: indoor code length by hop", rows)
    coded = {h: v for h, v in by_hop.items() if 1 <= h <= 8}
    assert coded, "no coded nodes"
    # Monotone-ish growth with hop count (±1 bit tolerance between levels).
    averages = [mean(coded[h]) for h in sorted(coded)]
    assert all(b > a - 1.0 for a, b in zip(averages, averages[1:])), averages
    # Same order of magnitude as the paper's byte-scale codes: a 6-hop
    # network fits comfortably within ~24 bits.
    assert max(max(v) for v in coded.values()) <= 28
    # 1-hop codes are a handful of bits (paper: 4.23 on average).
    first = mean(coded[min(coded)])
    assert 2.0 <= first <= 8.0, first
