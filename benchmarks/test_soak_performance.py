"""Endurance throughput canary: soaks must stay fast enough to be routine.

One soak cell (:func:`repro.experiments.soak.run_soak` — mobility churn,
battery depletion, streaming windowed metrics) is timed and normalised
against the bare event loop measured in the same process, cancelling
machine speed exactly like the kernel and scale canaries. The JSON
artefact (``BENCH_soak.json``) carries raw soak events/sec so dashboards
can watch the headline number: 24 h of sim time in well under an hour of
wall clock on one machine.

Scales: ``REPRO_BENCH_SCALE=smoke`` (CI's soak-smoke job: 30 min of sim
time) or ``full`` (default: 4 h). Enforcement is opt-in via
``REPRO_PERF_ENFORCE=1`` and loose (50% of the committed normalised
baseline): the floor catches "the endurance layer made every event
expensive" regressions — an accidental per-event mobility hook, an O(n)
scan per packet — not scheduling jitter.
"""

import json
import os
import time
from pathlib import Path

from repro.sim import Simulator

#: Per-tier soak cells. Smoke stays around half a minute of CI wall
#: clock; full runs a longer afternoon-scale soak with the same knobs.
SOAK_CELLS = {
    "smoke": dict(
        variant="tele", seed=1,
        duration_s=1800.0, window_s=300.0,
        control_interval_s=30.0, converge_seconds=120.0,
        churn_intensity=1.0, battery_mah=0.6, reclaim_ttl_s=300.0,
        tail_windows=8,
    ),
    "full": dict(
        variant="tele", seed=1,
        duration_s=4 * 3600.0, window_s=600.0,
        control_interval_s=60.0, converge_seconds=240.0,
        churn_intensity=1.0, battery_mah=2.0, reclaim_ttl_s=600.0,
        tail_windows=24,
    ),
}

BASELINE_PATH = "benchmarks/baselines/soak_baseline.json"


def _event_loop_rate(n_events=100_000):
    """Bare-kernel chained dispatch: the machine-speed normaliser."""
    sim = Simulator(seed=1)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return count[0] / wall if wall > 0 else 0.0


def test_soak_throughput_canary():
    """Events/sec for one endurance cell; emits BENCH_soak.json."""
    from repro.experiments.soak import run_soak

    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    cell = SOAK_CELLS[scale]

    norm_rate = _event_loop_rate()
    result = run_soak(**cell)
    assert result["converged"], "soak cell failed to converge — not a perf issue"
    assert result["windows"] > 0

    normalized = round(result["events_per_sec"] / norm_rate, 4) if norm_rate else None
    measured = {
        "nodes": result["size"],
        "sim_s": cell["duration_s"],
        "windows": result["windows"],
        "deaths": result["deaths"],
        "events": result["events_executed"],
        "wall_s": result["wall_s"],
        "events_per_s": result["events_per_sec"],
        "normalized": normalized,
        "event_loop_events_per_s": round(norm_rate, 1),
    }

    baseline_file = Path(__file__).resolve().parent.parent / BASELINE_PATH
    baseline = json.loads(baseline_file.read_text()) if baseline_file.exists() else {}
    base_scale = baseline.get("scales", {}).get(scale, {})

    payload = {
        "scale": scale,
        "cell": cell,
        "measured": measured,
        "baseline": base_scale,
        "baseline_label": baseline.get("label"),
    }
    Path("BENCH_soak.json").write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nsoak throughput ({scale}): {json.dumps(measured)}")

    if os.environ.get("REPRO_PERF_ENFORCE"):
        base_norm = base_scale.get("normalized")
        if base_norm and normalized:
            floor = 0.5 * base_norm
            assert normalized >= floor, (
                f"soak perf regression: normalized events/sec {normalized} "
                f"fell below 50% of the committed baseline {base_norm} "
                f"(floor {floor:.4f}). The endurance layer (mobility steps, "
                f"battery checks, window draining) got much more expensive "
                f"per event. If a PR legitimately adds per-event physics, "
                f"re-record {BASELINE_PATH} and justify it; otherwise find "
                f"the regression."
            )
