"""Figure 7: end-to-end PDR of control packets vs destination hop count.

Paper's claims, channel 26 (no WiFi): Drip ≈ 100 %; RPL decays 100→98 %;
Tele ≥ 98.9 % at 6 hops; Re-Tele ≥ 99.8 %.
Channel 19 (WiFi): RPL collapses to ~90 %; Tele dips slightly (→96.9 %);
Re-Tele recovers to ~99.3 %, close to Drip (99.7 %).

Shape to hold: Drip ≥ Re-Tele ≥ Tele > RPL, with RPL losing the most under
interference.
"""

from .conftest import print_rows

VARIANTS = ("drip", "re-tele", "tele", "rpl")


def _pdr_table(get_comparison, channel):
    results = {v: get_comparison(v, channel) for v in VARIANTS}
    rows = []
    for variant, result in results.items():
        by_hop = ", ".join(
            f"{hop}h:{ratio:.2f}" for hop, ratio in sorted(result.pdr_by_hop.items())
        )
        rows.append((variant, f"pdr={result.pdr:.3f}", by_hop))
    return results, rows


def test_fig7a_pdr_channel26(benchmark, get_comparison):
    results, rows = benchmark.pedantic(
        lambda: _pdr_table(get_comparison, 26), rounds=1, iterations=1
    )
    print_rows("Fig 7(a) PDR, channel 26 (no WiFi)", rows)
    assert results["drip"].pdr >= 0.95
    assert results["tele"].pdr >= 0.85
    assert results["re-tele"].pdr >= results["tele"].pdr - 0.08
    # The structured baselines sit at or below the flooding ceiling.
    assert results["rpl"].pdr <= results["drip"].pdr + 1e-9


def test_fig7b_pdr_channel19_wifi(benchmark, get_comparison):
    results, rows = benchmark.pedantic(
        lambda: _pdr_table(get_comparison, 19), rounds=1, iterations=1
    )
    print_rows("Fig 7(b) PDR, channel 19 (WiFi interference)", rows)
    assert results["drip"].pdr >= 0.9
    # RPL is the most vulnerable protocol under interference.
    assert results["rpl"].pdr <= results["drip"].pdr
    assert results["rpl"].pdr <= results["re-tele"].pdr + 0.02
    # TeleAdjusting stays within reach of flooding reliability.
    assert results["tele"].pdr >= results["rpl"].pdr - 0.05
    assert results["re-tele"].pdr >= 0.85
