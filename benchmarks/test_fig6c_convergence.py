"""Figure 6(c): convergence rate of path-code construction.

Paper's claims: after the routing-found trigger, nodes obtain their code
within 20 beacon rounds (512 ms each) in both fields, and most within 10.
"""

from repro.experiments.codestats import convergence_beacons
from repro.metrics.stats import percentile

from .conftest import print_rows


def _summarise(net, label):
    beacons = convergence_beacons(net)
    return beacons, (
        label,
        f"n={len(beacons)}",
        f"median={percentile(beacons, 50):.1f}",
        f"p90={percentile(beacons, 90):.1f}",
        f"max={max(beacons):.1f}",
    )


def test_fig6c_convergence_rate(benchmark, get_construction):
    tight = benchmark.pedantic(
        lambda: get_construction("tight-grid"), rounds=1, iterations=1
    )
    sparse = get_construction("sparse-linear")
    tight_beacons, tight_row = _summarise(tight, "tight-grid")
    sparse_beacons, sparse_row = _summarise(sparse, "sparse-linear")
    print_rows("Fig 6(c) beacons (512 ms) to converge", [tight_row, sparse_row])
    for label, beacons in (("tight", tight_beacons), ("sparse", sparse_beacons)):
        assert beacons, f"{label}: no converged nodes"
        # Paper: "without exceeding 20 beacons … most of the nodes completed
        # it [in] less than 10 beacons". Our per-node trigger includes the
        # 10-round child-stability wait, so medians land in the low teens.
        assert percentile(beacons, 50) <= 20.0, (label, percentile(beacons, 50))
        assert percentile(beacons, 80) <= 25.0, (label, percentile(beacons, 80))
