"""Figure 9: average radio duty cycle per protocol.

Paper's measurements: Drip 5.01 % (ch26) / 5.42 % (ch19);
RPL 3.83 % / 4.22 %; TeleAdjusting the lowest of the three.

Shape to hold: duty(Drip) > duty(RPL) ≥ duty(Tele), and interference
(channel 19) raises everyone's duty cycle.
"""

from .conftest import print_rows

PAPER = {"drip": (5.01, 5.42), "rpl": (3.83, 4.22)}


def test_fig9_duty_cycles(benchmark, get_comparison):
    def run():
        return {
            (v, ch): get_comparison(v, ch)
            for v in ("tele", "rpl", "drip")
            for ch in (26, 19)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (variant, channel), result in results.items():
        paper = PAPER.get(variant)
        rows.append(
            (
                variant,
                f"ch{channel}",
                f"duty={result.duty_cycle * 100:.2f}%",
                f"paper={paper[0 if channel == 26 else 1]}%" if paper else "paper=lowest",
            )
        )
    print_rows("Fig 9: average radio duty cycle", rows)
    for channel in (26, 19):
        drip = results[("drip", channel)].duty_cycle
        rpl = results[("rpl", channel)].duty_cycle
        tele = results[("tele", channel)].duty_cycle
        assert drip > rpl > 0, (channel, drip, rpl)
        # The paper's ordering on both channels: flooding costs the most and
        # TeleAdjusting the least (small tolerance for run-to-run noise).
        assert tele < drip, (channel, tele, drip)
        assert tele <= rpl + 0.004, (channel, tele, rpl)
        # All three in the paper's low-single-digit band.
        assert 0.005 < tele < 0.10
        assert 0.005 < drip < 0.12
    # Interference costs energy for the flooding protocol.
    assert results[("drip", 19)].duty_cycle >= results[("drip", 26)].duty_cycle - 0.005
