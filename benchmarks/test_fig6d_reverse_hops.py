"""Figure 6(d): downward (reverse) hop count vs CTP hop count.

Paper's claim: the reverse path (the encoded allocation chain) closely
tracks the CTP routing path — the ratio of average reverse hops to average
CTP hops is ≈ 1.08.
"""

from repro.experiments.codestats import mean_reverse_ratio, reverse_hop_counts

from .conftest import print_rows


def test_fig6d_reverse_vs_ctp_hops(benchmark, get_construction):
    tight = benchmark.pedantic(
        lambda: get_construction("tight-grid"), rounds=1, iterations=1
    )
    sparse = get_construction("sparse-linear")
    rows = []
    for label, net in (("tight-grid", tight), ("sparse-linear", sparse)):
        samples = reverse_hop_counts(net)
        ratio = mean_reverse_ratio(samples)
        rows.append((label, f"n={len(samples)}", f"reverse/ctp ratio={ratio:.3f}"))
        assert samples, f"{label}: no allocation chains"
        # Paper: ratio ≈ 1.08 — allow a modest band around parity.
        assert 0.85 <= ratio <= 1.35, (label, ratio)
        # Per-node sanity: reverse depth close to CTP depth for the vast
        # majority of nodes (absolute slack for shallow trees, relative for
        # the 40+ hop Sparse-linear chains).
        close = sum(
            1 for ctp, rev in samples if abs(ctp - rev) <= max(2, 0.25 * ctp)
        )
        assert close / len(samples) >= 0.75, (label, close / len(samples))
    print_rows("Fig 6(d) reverse vs CTP hop count", rows)
