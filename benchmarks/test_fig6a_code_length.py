"""Figure 6(a): path-code length vs hop count, Tight-grid and Sparse-linear.

Paper's claims to reproduce:
- Code length grows roughly linearly with hop count in both fields.
- In the 15×15 Tight-grid, 5 bytes (40 bits) of buffer suffice.
- Sparse-linear codes are longer per hop than Tight-grid codes would suggest
  from density alone (bit space wasted on reserve positions per hop).
"""

from repro.experiments.codestats import code_length_by_hop
from repro.metrics.stats import mean

from .conftest import print_rows


def _rows(net):
    by_hop = code_length_by_hop(net)
    return [
        (hop, round(mean(lengths), 2), min(lengths), max(lengths))
        for hop, lengths in by_hop.items()
        if hop < 10**4
    ], by_hop


def test_fig6a_tight_grid(benchmark, get_construction):
    net = benchmark.pedantic(
        lambda: get_construction("tight-grid"), rounds=1, iterations=1
    )
    rows, by_hop = _rows(net)
    print_rows("Fig 6(a) Tight-grid: hop, avg/min/max code bits", rows)
    avg_by_hop = {r[0]: r[1] for r in rows}
    # Roughly linear growth: each extra hop adds a few bits; allow noise in
    # the sparsely populated deepest buckets.
    deeper = [avg_by_hop[h] for h in sorted(avg_by_hop) if h >= 1]
    assert all(b > a - 2.5 for a, b in zip(deeper, deeper[1:])), deeper
    populated = [avg_by_hop[h] for h in sorted(avg_by_hop) if 1 <= h <= 6]
    assert all(b > a for a, b in zip(populated, populated[1:])), populated
    # The paper: 5 bytes (40 bits) is enough for the Tight-grid field.
    max_bits = max(max(v) for v in by_hop.values())
    assert max_bits <= 40, f"codes unexpectedly long: {max_bits} bits"


def test_fig6a_sparse_linear(benchmark, get_construction):
    net = benchmark.pedantic(
        lambda: get_construction("sparse-linear"), rounds=1, iterations=1
    )
    rows, by_hop = _rows(net)
    print_rows("Fig 6(a) Sparse-linear: hop, avg/min/max code bits", rows)
    avg_by_hop = {r[0]: r[1] for r in rows}
    hops = sorted(h for h in avg_by_hop if h >= 1)
    assert hops, "no coded nodes"
    # Linear-ish growth over depth: compare shallow vs deep thirds.
    shallow = mean([avg_by_hop[h] for h in hops[: len(hops) // 3] or hops[:1]])
    deep = mean([avg_by_hop[h] for h in hops[-len(hops) // 3 :] or hops[-1:]])
    assert deep > shallow * 2, (shallow, deep)
