"""Figure 10: end-to-end control latency vs destination hop count.

Paper's claims: RPL's latency is proportional to wake interval × hop count
(deterministic per-hop rendezvous); TeleAdjusting is far below RPL thanks to
opportunistic earlier-wake-up relays; Drip is lowest (every neighbour
floods).

Shape we hold: per-hop latency grows with hop count for every protocol, and
TeleAdjusting's *typical* (median) delivery beats RPL's per-hop rendezvous
cost. Our Drip pays a Trickle half-interval per hop on top of the LPL train,
so its absolute latency lands near TeleAdjusting's rather than below it —
recorded as a deviation in EXPERIMENTS.md.
"""

from repro.metrics.stats import percentile

from .conftest import print_rows


def test_fig10_latency_by_hop(benchmark, get_comparison):
    def run():
        return {v: get_comparison(v, 26) for v in ("tele", "rpl", "drip")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    medians = {}
    for variant, result in results.items():
        by_hop = ", ".join(
            f"{hop}h:{latency:.2f}s"
            for hop, latency in sorted(result.latency_by_hop.items())
        )
        latencies = [
            record.latency_s
            for record in result.control_metrics.records
            if record.latency_s is not None
        ]
        medians[variant] = percentile(latencies, 50)
        rows.append(
            (variant, f"median={medians[variant]:.2f}s", f"mean by hop: {by_hop}")
        )
    print_rows("Fig 10: end-to-end latency (channel 26)", rows)
    # Latency grows with distance: deepest bucket slower than 1-hop bucket.
    for variant, result in results.items():
        hops = sorted(h for h in result.latency_by_hop if h >= 1)
        if len(hops) >= 3:
            assert (
                result.latency_by_hop[hops[-1]] > result.latency_by_hop[hops[0]] * 0.8
            ), (variant, result.latency_by_hop)
    # RPL pays about half a wake interval per hop; TeleAdjusting's typical
    # delivery is faster per hop thanks to earlier-wake-up relays.
    rpl_records = results["rpl"].control_metrics.records
    rpl_per_hop = [
        r.latency_s / r.hop_count
        for r in rpl_records
        if r.latency_s is not None and r.hop_count >= 1
    ]
    tele_records = results["tele"].control_metrics.records
    tele_per_hop = [
        r.latency_s / r.hop_count
        for r in tele_records
        if r.latency_s is not None and r.hop_count >= 1
    ]
    assert rpl_per_hop and tele_per_hop
    assert percentile(tele_per_hop, 50) <= percentile(rpl_per_hop, 50) * 1.25, (
        percentile(tele_per_hop, 50),
        percentile(rpl_per_hop, 50),
    )
    # Everything resolves in seconds, not wake-interval-free milliseconds.
    assert medians["rpl"] > 0.1
