"""Simulator performance: event throughput and stack costs.

Unlike the figure benches (one expensive round, pedantic), these measure the
kernel's raw speed across rounds — the regression canaries for "why did the
whole suite get slow".
"""

from repro.mac import LPLMac
from repro.radio.channel import Channel
from repro.radio.frame import Frame, FrameType
from repro.radio.noise import ConstantNoise, CPMNoiseModel, synthesize_meyer_like_trace
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.sim import SECOND, Simulator


def test_event_loop_throughput(benchmark):
    """Schedule/dispatch cost of the bare kernel (100k chained events)."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 100_000


def test_timer_churn(benchmark):
    """Cancel/restart-heavy timer usage (the Trickle pattern)."""
    from repro.sim import Timer

    def run():
        sim = Simulator(seed=1)
        fired = [0]
        timer = Timer(sim, lambda: fired.__setitem__(0, fired[0] + 1))
        for i in range(20_000):
            timer.start_one_shot(5)  # restart cancels the previous
        sim.run()
        return fired[0]

    assert benchmark(run) == 1


def test_unicast_train_cost(benchmark):
    """Full-stack cost of one LPL unicast exchange (two live radios)."""

    def run():
        sim = Simulator(seed=1)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            [(0.0, 0.0), (8.0, 0.0)]
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        a = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        b = LPLMac(sim, Radio(sim, channel, 1), always_on=True)
        a.start()
        b.start()
        done = []
        for i in range(20):
            sim.schedule(
                i * 50_000,
                lambda: a.send(
                    Frame(src=0, dst=1, type=FrameType.DATA, length=40), done.append
                ),
            )
        sim.run(until=5 * SECOND)
        return sum(1 for r in done if r.ok)

    assert benchmark(run) == 20


def test_runner_dispatch_overhead(benchmark):
    """Engine overhead per cell: 50 trivial cells through the serial path."""
    from repro.runner import ParallelRunner, selftest_spec

    specs = [selftest_spec(i) for i in range(50)]

    def run():
        return ParallelRunner(jobs=1).run(specs)

    outcomes = benchmark(run)
    assert [o.status for o in outcomes] == ["executed"] * 50


def test_runner_parallel_throughput_canary():
    """jobs=1 vs jobs=cpu_count over sleepy cells; emits BENCH_runner.json.

    Not an assertion on speed-up (a 1-CPU container plus spawn start-up can
    legitimately lose on tiny grids) — the JSON file is the trajectory the
    perf dashboards track; correctness of the parallel path *is* asserted.
    """
    import json
    import os
    import time
    from pathlib import Path

    from repro.runner import ParallelRunner, selftest_spec

    n_cells, sleep_s = 8, 0.2
    specs = [selftest_spec(i, sleep_s=sleep_s) for i in range(n_cells)]

    started = time.perf_counter()
    serial = ParallelRunner(jobs=1).run(specs)
    serial_s = time.perf_counter() - started

    jobs = max(2, os.cpu_count() or 1)
    started = time.perf_counter()
    parallel = ParallelRunner(jobs=jobs).run(specs)
    parallel_s = time.perf_counter() - started

    assert [o.result for o in parallel] == [o.result for o in serial]
    assert all(o.status == "executed" for o in parallel)

    payload = {
        "cells": n_cells,
        "sleep_s_per_cell": sleep_s,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
    }
    Path("BENCH_runner.json").write_text(json.dumps(payload, indent=2))
    print(f"\nrunner throughput: {payload}")


def _time_scenario(run):
    """Run one canary scenario; returns (wall_s, events, events_per_s)."""
    import time

    started = time.perf_counter()
    events = run()
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall, 1) if wall > 0 else None,
    }


def _scenario_event_loop(n_events):
    """Bare-kernel chained dispatch: the machine-speed normaliser."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < n_events:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return sim.events_executed

    return run


def _scenario_lpl_grid(converge_s, run_s):
    """Small duty-cycled TeleAdjusting grid: MAC + channel + noise hot paths."""

    def run():
        from repro.experiments.harness import Network, NetworkConfig
        from repro.topology import random_uniform

        net = Network(
            NetworkConfig(
                topology=random_uniform(25, 80.0, 80.0, seed=7),
                protocol="tele",
                seed=7,
            )
        )
        net.converge(max_seconds=converge_s, target=0.97)
        net.run(run_s)
        return net.sim.events_executed

    return run


def _scenario_comparison(schedule):
    """The medium comparison cell: the acceptance metric for kernel PRs."""

    def run():
        from repro.experiments.comparison import run_comparison

        result = run_comparison("tele", seed=1, **schedule)
        return result.events_executed

    return run


def _scenario_chaos(schedule):
    """Fault-injection cell: reset/reboot machinery plus the fault hooks."""

    def run():
        from repro.experiments.chaos import run_chaos

        result = run_chaos(
            "tele", scenario="crash-churn", intensity=1.0, seed=3, **schedule
        )
        return result["events_executed"]

    return run


#: Canary scenarios per scale. "smoke" is the CI tier (seconds, not minutes);
#: "full" is the local tier the committed baseline pins.
CANARY_SCENARIOS = {
    "full": {
        "event-loop": _scenario_event_loop(300_000),
        "lpl-grid": _scenario_lpl_grid(30.0, 20.0),
        "comparison-medium": _scenario_comparison(
            dict(n_controls=6, control_interval_s=10.0,
                 converge_seconds=120.0, drain_seconds=20.0)
        ),
        "chaos-small": _scenario_chaos(
            dict(n_controls=2, control_interval_s=4.0,
                 converge_seconds=30.0, drain_seconds=10.0)
        ),
    },
    "smoke": {
        "event-loop": _scenario_event_loop(50_000),
        "lpl-grid": _scenario_lpl_grid(10.0, 5.0),
        "comparison-medium": _scenario_comparison(
            dict(n_controls=2, control_interval_s=4.0,
                 converge_seconds=20.0, drain_seconds=5.0)
        ),
        "chaos-small": _scenario_chaos(
            dict(n_controls=1, control_interval_s=4.0,
                 converge_seconds=15.0, drain_seconds=5.0)
        ),
    },
}

BASELINE_PATH = "benchmarks/baselines/kernel_baseline.json"


def test_kernel_throughput_canary():
    """Events/sec per scenario; emits BENCH_kernel.json with the committed
    pre-PR baseline folded in.

    Raw events/sec is machine-dependent, so regression enforcement (CI sets
    ``REPRO_PERF_ENFORCE=1``) uses the *normalised* score: a scenario's
    events/sec divided by the bare event-loop events/sec measured in the
    same process. That ratio cancels machine speed and isolates how much
    work the stack does per event. A >30% normalised drop vs the committed
    baseline fails the canary.

    Scale: ``REPRO_BENCH_SCALE=smoke`` (CI) or ``full`` (default; the tier
    the committed baseline's raw numbers were recorded at).
    """
    import json
    import os
    from pathlib import Path

    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    scenarios = CANARY_SCENARIOS[scale]

    measured = {}
    for name, run in scenarios.items():
        measured[name] = _time_scenario(run)
        print(f"{name:20s} {measured[name]}")

    norm = measured["event-loop"]["events_per_s"]
    for name, stats in measured.items():
        stats["normalized"] = (
            round(stats["events_per_s"] / norm, 4) if norm else None
        )

    baseline_file = Path(__file__).resolve().parent.parent / BASELINE_PATH
    baseline = (
        json.loads(baseline_file.read_text()) if baseline_file.exists() else {}
    )
    # "scales" is the regression-gate reference (kept current, so the gate
    # defends the latest optimisation level); "pre_pr" preserves the raw
    # numbers from before the kernel perf pass, so the headline speedup in
    # BENCH_kernel.json stays anchored to the same machine's history.
    base_scale = baseline.get("scales", {}).get(scale, {})
    pre_pr = baseline.get("pre_pr", {}).get("scales", {}).get(scale, base_scale)

    speedups = {}
    for name, stats in measured.items():
        base = pre_pr.get(name, {})
        if base.get("events_per_s") and stats["events_per_s"]:
            speedups[name] = round(stats["events_per_s"] / base["events_per_s"], 3)

    payload = {
        "scale": scale,
        "scenarios": measured,
        "baseline": base_scale,
        "baseline_label": baseline.get("label"),
        "pre_pr_baseline": pre_pr,
        "speedup_vs_pre_pr": speedups,
    }
    Path("BENCH_kernel.json").write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nkernel throughput ({scale}): {json.dumps(speedups)}")

    if os.environ.get("REPRO_PERF_ENFORCE"):
        for name, stats in measured.items():
            base_norm = base_scale.get(name, {}).get("normalized")
            if name == "event-loop" or not base_norm or not stats["normalized"]:
                continue
            floor = 0.7 * base_norm
            assert stats["normalized"] >= floor, (
                f"perf regression in {name!r}: normalized events/sec "
                f"{stats['normalized']} fell below 70% of the committed "
                f"baseline {base_norm} (floor {floor:.4f}). If a PR "
                f"legitimately makes events more expensive (new per-event "
                f"physics), re-record {BASELINE_PATH} and justify it in the "
                f"PR; otherwise find the hot-path regression."
            )


def test_cpm_sampling_rate(benchmark):
    """Noise-model sampling — the hottest per-CCA call in big runs."""
    trace = synthesize_meyer_like_trace(length=10_000, seed=1)
    model = CPMNoiseModel(trace, seed=2)

    def run():
        return sum(model.sample() for _ in range(50_000))

    total = benchmark(run)
    assert total < 0  # dBm readings are negative
