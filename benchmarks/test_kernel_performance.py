"""Simulator performance: event throughput and stack costs.

Unlike the figure benches (one expensive round, pedantic), these measure the
kernel's raw speed across rounds — the regression canaries for "why did the
whole suite get slow".
"""

from repro.mac import LPLMac
from repro.radio.channel import Channel
from repro.radio.frame import Frame, FrameType
from repro.radio.noise import ConstantNoise, CPMNoiseModel, synthesize_meyer_like_trace
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.sim import SECOND, Simulator


def test_event_loop_throughput(benchmark):
    """Schedule/dispatch cost of the bare kernel (100k chained events)."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 100_000


def test_timer_churn(benchmark):
    """Cancel/restart-heavy timer usage (the Trickle pattern)."""
    from repro.sim import Timer

    def run():
        sim = Simulator(seed=1)
        fired = [0]
        timer = Timer(sim, lambda: fired.__setitem__(0, fired[0] + 1))
        for i in range(20_000):
            timer.start_one_shot(5)  # restart cancels the previous
        sim.run()
        return fired[0]

    assert benchmark(run) == 1


def test_unicast_train_cost(benchmark):
    """Full-stack cost of one LPL unicast exchange (two live radios)."""

    def run():
        sim = Simulator(seed=1)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            [(0.0, 0.0), (8.0, 0.0)]
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        a = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        b = LPLMac(sim, Radio(sim, channel, 1), always_on=True)
        a.start()
        b.start()
        done = []
        for i in range(20):
            sim.schedule(
                i * 50_000,
                lambda: a.send(
                    Frame(src=0, dst=1, type=FrameType.DATA, length=40), done.append
                ),
            )
        sim.run(until=5 * SECOND)
        return sum(1 for r in done if r.ok)

    assert benchmark(run) == 20


def test_runner_dispatch_overhead(benchmark):
    """Engine overhead per cell: 50 trivial cells through the serial path."""
    from repro.runner import ParallelRunner, selftest_spec

    specs = [selftest_spec(i) for i in range(50)]

    def run():
        return ParallelRunner(jobs=1).run(specs)

    outcomes = benchmark(run)
    assert [o.status for o in outcomes] == ["executed"] * 50


def test_runner_parallel_throughput_canary():
    """jobs=1 vs jobs=cpu_count over sleepy cells; emits BENCH_runner.json.

    Not an assertion on speed-up (a 1-CPU container plus spawn start-up can
    legitimately lose on tiny grids) — the JSON file is the trajectory the
    perf dashboards track; correctness of the parallel path *is* asserted.
    """
    import json
    import os
    import time
    from pathlib import Path

    from repro.runner import ParallelRunner, selftest_spec

    n_cells, sleep_s = 8, 0.2
    specs = [selftest_spec(i, sleep_s=sleep_s) for i in range(n_cells)]

    started = time.perf_counter()
    serial = ParallelRunner(jobs=1).run(specs)
    serial_s = time.perf_counter() - started

    jobs = max(2, os.cpu_count() or 1)
    started = time.perf_counter()
    parallel = ParallelRunner(jobs=jobs).run(specs)
    parallel_s = time.perf_counter() - started

    assert [o.result for o in parallel] == [o.result for o in serial]
    assert all(o.status == "executed" for o in parallel)

    payload = {
        "cells": n_cells,
        "sleep_s_per_cell": sleep_s,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
    }
    Path("BENCH_runner.json").write_text(json.dumps(payload, indent=2))
    print(f"\nrunner throughput: {payload}")


def test_cpm_sampling_rate(benchmark):
    """Noise-model sampling — the hottest per-CCA call in big runs."""
    trace = synthesize_meyer_like_trace(length=10_000, seed=1)
    model = CPMNoiseModel(trace, seed=2)

    def run():
        return sum(model.sample() for _ in range(50_000))

    total = benchmark(run)
    assert total < 0  # dBm readings are negative
