"""Figure 6(b): distribution of the number of children per hop.

Paper's claim: in a tight network some nodes solicit many children
(inflating single-hop bit space) which *reduces total hop count* and thereby
the maximum code length; Sparse-linear has small per-node child counts but
many more hops.
"""

from repro.experiments.codestats import children_by_hop
from repro.metrics.stats import mean

from .conftest import print_rows


def test_fig6b_children_distribution(benchmark, get_construction):
    tight = get_construction("tight-grid")
    sparse = benchmark.pedantic(
        lambda: get_construction("sparse-linear"), rounds=1, iterations=1
    )
    tight_children = children_by_hop(tight)
    sparse_children = children_by_hop(sparse)
    rows = [
        ("tight", hop, round(mean(counts), 2), max(counts))
        for hop, counts in tight_children.items()
    ] + [
        ("sparse", hop, round(mean(counts), 2), max(counts))
        for hop, counts in sparse_children.items()
    ]
    print_rows("Fig 6(b) field, hop, avg children, max children", rows)

    def overall_mean(grouped):
        values = [c for counts in grouped.values() for c in counts]
        return mean(values)

    def max_hop(grouped):
        return max(h for h in grouped if h < 10**4)

    # Tight-grid: fewer hops; sparse-linear: far deeper tree.
    assert max_hop(sparse_children) > max_hop(tight_children) * 2
    # Branching exists in both: someone has multiple children.
    assert max(max(c) for c in tight_children.values()) >= 3
    assert overall_mean(tight_children) >= overall_mean(sparse_children) * 0.8
