"""Shared fixtures for the per-figure/table benchmarks.

The testbed-comparison figures (7–10) and Table III slice the *same* runs,
so runs are cached per (variant, channel, seed) for the whole benchmark
session. Code-construction runs (Figure 6, Table II) are cached per
topology. Benchmarks print the paper-style rows so the regenerated
table/figure data is visible in the benchmark log.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.experiments.codestats import code_construction_run
from repro.experiments.comparison import ComparisonResult, run_comparison

#: Kept modest so the whole benchmark suite stays in the minutes range; raise
#: for tighter confidence intervals.
N_CONTROLS = 25
CONTROL_INTERVAL_S = 60.0
CONVERGE_SECONDS = 240.0
SEED = 1


@lru_cache(maxsize=None)
def comparison(variant: str, channel: int, seed: int = SEED) -> ComparisonResult:
    return run_comparison(
        variant,
        zigbee_channel=channel,
        seed=seed,
        n_controls=N_CONTROLS,
        control_interval_s=CONTROL_INTERVAL_S,
        converge_seconds=CONVERGE_SECONDS,
    )


@lru_cache(maxsize=None)
def construction(topology: str, seed: int = SEED):
    max_seconds = 400.0 if topology != "indoor-testbed" else 240.0
    return code_construction_run(topology=topology, seed=seed, max_seconds=max_seconds)


@pytest.fixture(scope="session")
def get_comparison():
    return comparison


@pytest.fixture(scope="session")
def get_construction():
    return construction


def print_rows(title: str, rows) -> None:
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", row)
