"""Ablations of TeleAdjusting's design choices (DESIGN.md §6).

Not a paper figure: quantifies what each mechanism buys.

- ``opportunistic=False`` — strict encoded-path forwarding (only the named
  expected relay may acknowledge). Expect higher latency (no earlier-wake-up
  exploitation) and/or lower delivery.
- ``re_tele=True`` — the §III-C4 countermeasure. Expect PDR at least as good
  as plain TeleAdjusting.
"""

from functools import lru_cache

from repro.experiments.comparison import run_comparison
from repro.experiments.harness import Network, NetworkConfig
from repro.sim.units import SECOND
from repro.workloads.control import ControlSchedule

from .conftest import print_rows


@lru_cache(maxsize=None)
def _run_strict(seed: int = 1):
    net = Network(
        NetworkConfig(
            topology="indoor-testbed",
            protocol="tele",
            seed=seed,
            zigbee_channel=26,
            opportunistic=False,
        )
    )
    net.converge(max_seconds=240.0, target=0.97)
    net.metrics.mark()
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(destination, payload=index),
        destinations=net.non_sink_nodes(),
        interval=60 * SECOND,
        count=20,
        rng_name="ablation-strict",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(20 * 60.0 + 90.0)
    return net


def test_ablation_opportunistic_forwarding(benchmark, get_comparison):
    strict_net = benchmark.pedantic(_run_strict, rounds=1, iterations=1)
    strict = strict_net.control_metrics
    opportunistic = get_comparison("tele", 26).control_metrics
    rows = [
        (
            "strict path",
            f"pdr={strict.pdr():.2f}",
            f"mean latency={strict.mean_latency() or float('nan'):.2f}s",
        ),
        (
            "opportunistic",
            f"pdr={opportunistic.pdr():.2f}",
            f"mean latency={opportunistic.mean_latency() or float('nan'):.2f}s",
        ),
    ]
    print_rows("Ablation: opportunistic forwarding", rows)
    # Opportunism must not hurt delivery, and typically improves it.
    assert opportunistic.pdr() >= strict.pdr() - 0.05


def test_ablation_re_tele_countermeasure(benchmark, get_comparison):
    plain = benchmark.pedantic(
        lambda: get_comparison("tele", 19), rounds=1, iterations=1
    )
    rescued = get_comparison("re-tele", 19)
    rows = [
        ("tele", f"pdr={plain.pdr:.3f}"),
        ("re-tele", f"pdr={rescued.pdr:.3f}"),
    ]
    print_rows("Ablation: Re-Tele under WiFi interference", rows)
    assert rescued.pdr >= plain.pdr - 0.08


def test_extension_orpl_baseline(benchmark, get_comparison):
    """ORPL (related work [22]) vs TeleAdjusting on the clean channel.

    Quantifies the paper's criticism: bloom-filter false positives cause
    ineffectual transmissions, so ORPL should spend at least as many
    transmissions per control packet without beating TeleAdjusting's
    reliability.
    """
    tele = get_comparison("tele", 26)
    orpl = benchmark.pedantic(
        lambda: get_comparison("orpl", 26), rounds=1, iterations=1
    )
    rows = [
        (
            variant,
            f"pdr={result.pdr:.3f}",
            f"tx/ctrl={result.tx_per_control:.2f}",
            f"lat={result.mean_latency and round(result.mean_latency, 2)}s",
        )
        for variant, result in (("tele", tele), ("orpl", orpl))
    ]
    print_rows("Extension: ORPL baseline (channel 26)", rows)
    assert orpl.pdr is not None and orpl.pdr >= 0.5  # it does work…
    # …but addressing by code prefix is at least as reliable as blooms.
    assert tele.pdr >= orpl.pdr - 0.10
