"""Extension benches: sweeps beyond the paper's fixed configuration.

Not paper figures — they probe how TeleAdjusting's trade-offs move when the
two constants the paper fixes (512 ms wake interval, network size) vary.
"""

from repro.experiments.sweep import sweep_network_size, sweep_wake_interval

from .conftest import print_rows


def test_wake_interval_tradeoff(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_wake_interval((256, 512, 1024), n_controls=10, seed=1),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{p.x:.0f} ms",
            f"pdr={p.pdr:.2f}",
            f"duty={p.duty_cycle * 100:.2f}%",
            f"latency={p.mean_latency:.2f}s",
        )
        for p in points
    ]
    print_rows("Sweep: LPL wake interval (TeleAdjusting)", rows)
    by_wake = {p.x: p for p in points}
    # Shorter sleep ⇒ more expensive idle listening (denser channel checks).
    assert by_wake[256].duty_cycle > by_wake[512].duty_cycle
    # Reliability holds across the sweep. (Mean latency at this sample size
    # is dominated by recovery tails, so no latency ordering is asserted.)
    assert all(p.pdr >= 0.7 for p in points), [(p.x, p.pdr) for p in points]


def test_network_size_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_network_size((10, 20, 40), n_controls=8, seed=1),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{p.x:.0f} nodes",
            f"pdr={p.pdr:.2f}",
            f"coded={p.detail['coded_fraction']:.2f}",
            f"avg bits={p.detail['mean_code_bits']:.1f}",
            f"max bits={p.detail['max_code_bits']:.0f}",
        )
        for p in points
    ]
    print_rows("Sweep: network size at constant density", rows)
    # Addressing scales: everyone coded, codes grow sub-linearly in node
    # count (they track tree depth, not population).
    for p in points:
        assert p.detail["coded_fraction"] >= 0.85
    small, _, large = points
    assert large.detail["max_code_bits"] <= small.detail["max_code_bits"] * 6
    assert all(p.pdr >= 0.6 for p in points)
