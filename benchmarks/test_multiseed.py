"""Seed-averaged headline comparison (the paper averages ≥5 runs).

Kept to two seeds and one channel so the bench suite stays tractable; the
full methodology is ``run_comparison_multi(seeds=range(1, 6))``.
"""

from repro.experiments.sweep import run_comparison_multi

from .conftest import CONTROL_INTERVAL_S, CONVERGE_SECONDS, N_CONTROLS, print_rows


def test_multiseed_headline(benchmark):
    def run():
        return {
            variant: run_comparison_multi(
                variant,
                zigbee_channel=26,
                seeds=(1, 2),
                n_controls=N_CONTROLS,
                control_interval_s=CONTROL_INTERVAL_S,
                converge_seconds=CONVERGE_SECONDS,
            )
            for variant in ("tele", "rpl")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            variant,
            f"pdr={aggregate.pdr.summary()}",
            f"tx={aggregate.tx_per_control.summary()}",
            f"duty={aggregate.duty_cycle.summary()}",
        )
        for variant, aggregate in results.items()
    ]
    print_rows("Seed-averaged comparison (channel 26, seeds 1-2)", rows)
    tele, rpl = results["tele"], results["rpl"]
    # The headline holds on seed-averaged means, not just single runs:
    assert tele.pdr.mean >= rpl.pdr.mean - 0.02
    assert tele.duty_cycle.mean <= rpl.duty_cycle.mean + 0.003
    assert tele.tx_per_control.mean < 12
